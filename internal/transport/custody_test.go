package transport

import (
	"testing"
	"time"

	"diffusion/internal/custody"
	"diffusion/internal/message"
)

// custodyPayload builds a marshalled Data message carrying seq in its
// packet number, returning the wire payload and its custody token.
func custodyPayload(seq uint32) ([]byte, message.ID) {
	m := message.Message{
		Class:   message.Data,
		ID:      message.ID{RandID: 0xc0de, PktNum: seq},
		PrevHop: 1, NextHop: 2,
	}
	return m.Marshal(), m.ID
}

// custodyHarness wires a custody.Queue behind an endpoint's
// CustodyOptions and records releases, the shape cmd/diffnode uses.
type custodyHarness struct {
	q        *custody.Queue
	released chan message.ID
}

func newCustodyHarness(limit int) *custodyHarness {
	return &custodyHarness{
		q:        custody.NewQueue(limit, nil),
		released: make(chan message.ID, 64),
	}
}

func (h *custodyHarness) options(rto, maxRTO time.Duration) *CustodyOptions {
	return &CustodyOptions{
		Accept: func(from uint32, id message.ID, payload []byte) (held, fresh bool) {
			return h.q.Accept(id, payload)
		},
		Release: func(peer uint32, id message.ID) {
			h.q.Release(id)
			h.released <- id
		},
		RTO:    rto,
		MaxRTO: maxRTO,
	}
}

// TestUDPCustodyTransfer walks the happy path over real sockets: the
// sender holds custody, offers it, and discharges only after the
// receiver's durable accept comes back as an ack. The payload is
// delivered up exactly once.
func TestUDPCustodyTransfer(t *testing.T) {
	ha, hb := newCustodyHarness(16), newCustodyHarness(16)
	a, _, _, cb := pair(t,
		UDPConfig{Custody: ha.options(20*time.Millisecond, 100*time.Millisecond)},
		UDPConfig{Custody: hb.options(20*time.Millisecond, 100*time.Millisecond)})

	payload, id := custodyPayload(1)
	// The sender is the current custodian: its queue vouches for the
	// message until the peer's ack discharges it.
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return cb.count() == 1 }, "custody delivery")
	select {
	case got := <-ha.released:
		if got != id {
			t.Fatalf("released %v, want %v", got, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for custody release")
	}
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "offer to clear")

	if ha.q.Len() != 0 {
		t.Fatalf("sender queue len = %d, want 0 after discharge", ha.q.Len())
	}
	if hb.q.Len() != 1 || !hb.q.Has(id) {
		t.Fatalf("receiver queue len = %d, Has = %v; want custody held", hb.q.Len(), hb.q.Has(id))
	}
	if a.Stats().CustodySent.Load() == 0 || a.Stats().CustodyAcksRecv.Load() == 0 {
		t.Fatalf("sender accounting: sent=%d acksRecv=%d",
			a.Stats().CustodySent.Load(), a.Stats().CustodyAcksRecv.Load())
	}
}

// TestUDPCustodyRetransmitsAcrossPartition blocks the receiver, offers
// custody, and lets the offer ride out the partition on its capped
// backoff: unlike reliable unicast there is no give-up, so the transfer
// completes as soon as the partition heals.
func TestUDPCustodyRetransmitsAcrossPartition(t *testing.T) {
	ha, hb := newCustodyHarness(16), newCustodyHarness(16)
	a, _, _, cb := pair(t,
		UDPConfig{Custody: ha.options(10*time.Millisecond, 40*time.Millisecond)},
		UDPConfig{Custody: hb.options(10*time.Millisecond, 40*time.Millisecond)})

	a.Block(2)
	payload, id := custodyPayload(7)
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}

	// The offer must keep retrying into the partition, not be abandoned.
	waitFor(t, func() bool { return a.Stats().CustodyRetransmits.Load() >= 3 },
		"retransmissions during partition")
	if cb.count() != 0 {
		t.Fatal("payload crossed a blocked link")
	}
	if a.CustodyPending() != 1 {
		t.Fatalf("pending = %d, want 1 (never abandoned)", a.CustodyPending())
	}

	a.Unblock(2)
	waitFor(t, func() bool { return cb.count() == 1 }, "delivery after heal")
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "discharge after heal")
	if ha.q.Len() != 0 || hb.q.Len() != 1 {
		t.Fatalf("queues after heal: sender=%d receiver=%d, want 0 and 1",
			ha.q.Len(), hb.q.Len())
	}
}

// TestUDPCustodyDuplicateOfferReacked re-offers an ID the receiver
// already durably holds — the shape a lost ack or a custodian restart
// produces. The duplicate must be re-acked (held) without being
// re-delivered (not fresh), so the sender discharges and the receiver
// still delivered exactly once.
func TestUDPCustodyDuplicateOfferReacked(t *testing.T) {
	ha, hb := newCustodyHarness(16), newCustodyHarness(16)
	a, b, _, cb := pair(t,
		UDPConfig{Custody: ha.options(10*time.Millisecond, 40*time.Millisecond)},
		UDPConfig{Custody: hb.options(10*time.Millisecond, 40*time.Millisecond)})

	payload, id := custodyPayload(9)
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "first transfer")

	// Offer the same ID again, as a restarted custodian whose ack was
	// lost would: the receiver re-acks from its held set without a second
	// delivery, and the sender discharges again.
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "duplicate re-acked")
	if got := cb.count(); got != 1 {
		t.Fatalf("delivered %d times, want exactly 1", got)
	}
	if got := b.Stats().CustodyAcksSent.Load(); got < 2 {
		t.Fatalf("acks sent = %d, want >= 2", got)
	}
	if hb.q.Len() != 1 {
		t.Fatalf("receiver queue len = %d, want 1", hb.q.Len())
	}
}

// TestUDPCustodyRejectedWhenFull gives the receiver a zero-headroom
// custody queue: offers are refused (no ack, counted as rejected) and
// the payload is not delivered, so the sender retains custody. Once the
// receiver frees a slot, a later retransmission is accepted.
func TestUDPCustodyRejectedWhenFull(t *testing.T) {
	ha, hb := newCustodyHarness(16), newCustodyHarness(1)
	a, b, _, cb := pair(t,
		UDPConfig{Custody: ha.options(10*time.Millisecond, 40*time.Millisecond)},
		UDPConfig{Custody: hb.options(10*time.Millisecond, 40*time.Millisecond)})

	// Fill the receiver's single slot with unrelated custody.
	blocker, blockerID := custodyPayload(100)
	hb.q.Accept(blockerID, blocker)

	payload, id := custodyPayload(3)
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return b.Stats().CustodyRejected.Load() >= 2 },
		"offers rejected while full")
	if cb.count() != 0 {
		t.Fatal("rejected offer was delivered")
	}
	if ha.q.Len() != 1 {
		t.Fatalf("sender queue len = %d, want 1 (custody retained)", ha.q.Len())
	}

	hb.q.Release(blockerID)
	waitFor(t, func() bool { return cb.count() == 1 }, "accept after slot freed")
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "discharge")
}

// TestUDPCustodyReofferOnRecovery pairs custody with the failure
// detector: a partition long enough to declare the peer dead, then a
// heal — the PeerAlive transition must re-offer pending custody
// immediately instead of waiting out the full backoff.
func TestUDPCustodyReofferOnRecovery(t *testing.T) {
	lv := &LivenessConfig{
		Interval:        10 * time.Millisecond,
		SuspectAfter:    30 * time.Millisecond,
		DeadAfter:       60 * time.Millisecond,
		MaxProbeBackoff: 20 * time.Millisecond,
	}
	ha, hb := newCustodyHarness(16), newCustodyHarness(16)
	// A long RTO so only the recovery hook can explain a prompt re-offer.
	la, lb := *lv, *lv
	a, b, _, cb := pair(t,
		UDPConfig{Liveness: &la, Custody: ha.options(2*time.Second, 4*time.Second)},
		UDPConfig{Liveness: &lb, Custody: hb.options(2*time.Second, 4*time.Second)})

	// Partition both directions and wait for a to declare 2 dead.
	a.Block(2)
	b.Block(1)
	waitFor(t, func() bool { return a.Stats().PeerDeaths.Load() >= 1 }, "peer death")

	payload, id := custodyPayload(5)
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatal("payload crossed the partition")
	}

	a.Unblock(2)
	b.Unblock(1)
	// Heartbeats resume, the detector flips 2 back to alive, and the
	// recovery hook re-offers well before the 2 s RTO would fire.
	waitFor(t, func() bool { return cb.count() == 1 }, "re-offer on recovery")
	waitFor(t, func() bool { return a.CustodyPending() == 0 }, "discharge")
	if a.Stats().PeerRecoveries.Load() == 0 {
		t.Fatal("no recovery transition recorded")
	}
}

// TestUDPCustodySupersede moves a pending offer to a new peer: the old
// offer is dropped, and pending stays at one.
func TestUDPCustodySupersede(t *testing.T) {
	ha := newCustodyHarness(16)
	hb := newCustodyHarness(16)
	a, _, _, _ := pair(t,
		UDPConfig{Custody: ha.options(time.Hour, time.Hour)},
		UDPConfig{Custody: hb.options(time.Hour, time.Hour)})

	payload, id := custodyPayload(11)
	ha.q.Accept(id, payload)
	a.Block(2)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}
	if a.CustodyPending() != 1 {
		t.Fatalf("pending = %d, want 1", a.CustodyPending())
	}
	// Re-offering to the same peer is a no-op on the wire state.
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}
	if a.CustodyPending() != 1 {
		t.Fatalf("pending after idempotent re-offer = %d, want 1", a.CustodyPending())
	}
	if got := a.Stats().CustodySent.Load(); got != 1 {
		t.Fatalf("custody sent = %d, want 1 (re-offer suppressed)", got)
	}

	// Unknown destinations are refused outright.
	if err := a.SendCustody(99, id, payload); err == nil {
		t.Fatal("SendCustody to a stranger must fail")
	}
}

// TestUDPCustodyToCustodylessPeer covers mixed deployments: an offer to
// a peer running without custody still delivers the payload — exactly
// once, retransmits deduplicated by offer seq — but is never
// acknowledged, so responsibility stays with the sender (the offer
// remains pending and the queue keeps the item). Before this contract
// the frame was dropped outright and the data never arrived at all.
func TestUDPCustodyToCustodylessPeer(t *testing.T) {
	ha := newCustodyHarness(16)
	a, _, _, cb := pair(t,
		UDPConfig{Custody: ha.options(20*time.Millisecond, 50*time.Millisecond)},
		UDPConfig{}) // receiver has no custody wired

	payload, id := custodyPayload(7)
	ha.q.Accept(id, payload)
	if err := a.SendCustody(2, id, payload); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return cb.count() == 1 }, "best-effort delivery")
	// Let several retransmissions happen; none may double-deliver or ack.
	time.Sleep(300 * time.Millisecond)
	if got := cb.count(); got != 1 {
		t.Fatalf("delivered %d times, want exactly 1", got)
	}
	if a.Stats().CustodyRetransmits.Load() == 0 {
		t.Fatal("sender should still be retransmitting the unacknowledged offer")
	}
	if a.Stats().CustodyAcksRecv.Load() != 0 {
		t.Fatal("custody-less peer must never acknowledge an offer")
	}
	if a.CustodyPending() != 1 || ha.q.Len() != 1 || !ha.q.Has(id) {
		t.Fatalf("pending=%d len=%d has=%v; sender must keep custody",
			a.CustodyPending(), ha.q.Len(), ha.q.Has(id))
	}
	select {
	case <-ha.released:
		t.Fatal("custody must not be released without a durable accept")
	default:
	}
}
