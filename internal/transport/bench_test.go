package transport

import (
	"testing"
)

// BenchmarkUDPRoundTrip measures one request/response pair of framed
// datagrams across the loopback interface between two endpoints — the
// live transport's cost floor, recorded in BENCH_transport.json. Payload
// is 64 bytes, about one interest with a few attributes.
func BenchmarkUDPRoundTrip(b *testing.B) {
	pong := make(chan struct{}, 1)
	var responder *UDP
	resp, err := ListenUDP(UDPConfig{ID: 2, Listen: "127.0.0.1:0",
		Deliver: func(from uint32, p []byte) {
			responder.Send(1, p)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Close()
	responder = resp

	req, err := ListenUDP(UDPConfig{ID: 1, Listen: "127.0.0.1:0",
		Neighbors: map[uint32]string{2: resp.LocalAddr().String()},
		Deliver:   func(from uint32, p []byte) { pong <- struct{}{} },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer req.Close()

	// The responder has no neighbor table until the requester is bound;
	// rebuild it now both addresses exist.
	resp.Close()
	resp2, err := ListenUDP(UDPConfig{ID: 2, Listen: resp.LocalAddr().String(),
		Neighbors: map[uint32]string{1: req.LocalAddr().String()},
		Deliver: func(from uint32, p []byte) {
			responder.Send(1, p)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer resp2.Close()
	responder = resp2

	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := req.Send(2, payload); err != nil {
			b.Fatal(err)
		}
		<-pong
	}
}

// BenchmarkMeshRoundTrip is the in-process baseline: the same ping/pong
// without sockets, isolating framing + accounting + goroutine handoff
// cost from kernel UDP cost.
func BenchmarkMeshRoundTrip(b *testing.B) {
	m := NewMesh(1)
	defer m.Close()
	pong := make(chan struct{}, 1)
	var l1, l2 *MeshLink
	l1 = m.Attach(1, func(from uint32, p []byte) { pong <- struct{}{} })
	l2 = m.Attach(2, func(from uint32, p []byte) { l2.Send(1, p) })
	m.Connect(1, 2)

	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l1.Send(2, payload); err != nil {
			b.Fatal(err)
		}
		<-pong
	}
}
