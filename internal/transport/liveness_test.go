package transport

import (
	"sync"
	"testing"
	"time"
)

// transitionLog records OnStateChange callbacks thread-safely.
type transitionLog struct {
	mu  sync.Mutex
	seq []PeerState
}

func (l *transitionLog) record(peer uint32, s PeerState) {
	l.mu.Lock()
	l.seq = append(l.seq, s)
	l.mu.Unlock()
}

func (l *transitionLog) snapshot() []PeerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]PeerState(nil), l.seq...)
}

// TestDetectorClassifiesSilence drives the detector's tick with synthetic
// clock readings — no sleeping, no goroutine — and checks the full
// alive → suspect → dead → alive cycle plus its accounting.
func TestDetectorClassifiesSilence(t *testing.T) {
	var stats Stats
	var log transitionLog
	var probes []uint32
	cfg := LivenessConfig{
		Interval:      time.Second,
		OnStateChange: func(peer uint32, s PeerState) { log.record(peer, s) },
	}
	d := newDetector(cfg, 1, []uint32{2}, &stats,
		func(peer, seq uint32) { probes = append(probes, seq) })
	base := time.Now()

	// Within SuspectAfter: still alive, but probes flow.
	d.tick(base.Add(500 * time.Millisecond))
	if got := d.snapshot()[2].State; got != PeerAlive {
		t.Fatalf("state after 0.5s silence = %v, want alive", got)
	}
	if len(probes) == 0 {
		t.Fatal("detector sent no probe")
	}

	// Past SuspectAfter (3×Interval default): suspect.
	d.tick(base.Add(3500 * time.Millisecond))
	if got := d.snapshot()[2].State; got != PeerSuspect {
		t.Fatalf("state after 3.5s silence = %v, want suspect", got)
	}
	if stats.PeerSuspects.Load() != 1 {
		t.Fatalf("suspects = %d, want 1", stats.PeerSuspects.Load())
	}

	// Past DeadAfter (8×Interval default): dead, and the node is isolated
	// (its only neighbor is dead).
	d.tick(base.Add(9 * time.Second))
	if got := d.snapshot()[2].State; got != PeerDead {
		t.Fatalf("state after 9s silence = %v, want dead", got)
	}
	if stats.PeerDeaths.Load() != 1 {
		t.Fatalf("deaths = %d, want 1", stats.PeerDeaths.Load())
	}
	if !d.allDead() {
		t.Fatal("allDead should report isolation with the only neighbor dead")
	}
	// Re-ticking must not re-fire the transition.
	d.tick(base.Add(10 * time.Second))
	if stats.PeerDeaths.Load() != 1 {
		t.Fatal("dead transition fired twice")
	}

	// Any frame heard revives instantly.
	d.markHeard(2)
	if got := d.snapshot()[2].State; got != PeerAlive {
		t.Fatalf("state after markHeard = %v, want alive", got)
	}
	if stats.PeerRecoveries.Load() != 1 {
		t.Fatalf("recoveries = %d, want 1", stats.PeerRecoveries.Load())
	}
	if d.allDead() {
		t.Fatal("recovered peer still counted dead")
	}
	want := []PeerState{PeerSuspect, PeerDead, PeerAlive}
	got := log.snapshot()
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

// TestDetectorProbeBackoff checks that probes toward a silent peer back
// off exponentially up to the cap, and that a completed pong records an
// RTT.
func TestDetectorProbeBackoff(t *testing.T) {
	var stats Stats
	var probes int
	cfg := LivenessConfig{Interval: time.Second, MaxProbeBackoff: 4 * time.Second}
	d := newDetector(cfg, 1, []uint32{7}, &stats, func(peer, seq uint32) { probes++ })
	base := time.Now()

	// Step a synthetic clock in fine increments over a long silence; with
	// backoff doubling 1s → 2s → 4s (cap), far fewer probes must go out
	// than the ~120 an un-backed-off 1 Hz probe stream would send.
	for ms := 0; ms < 120_000; ms += 250 {
		d.tick(base.Add(time.Duration(ms) * time.Millisecond))
	}
	if probes == 0 {
		t.Fatal("no probes sent")
	}
	// 120s at the 4s cap is ~30 probes plus the pre-cap ramp, with ±25%
	// jitter. Allow slack but reject anything near per-interval probing.
	if probes > 60 {
		t.Fatalf("probes = %d, backoff not applied", probes)
	}

	// A pong matching the outstanding probe seq records an RTT.
	d.mu.Lock()
	seq := d.peers[7].pingSeq
	d.peers[7].pingAt = time.Now().Add(-3 * time.Millisecond)
	d.mu.Unlock()
	d.onPong(7, seq)
	if stats.RTTCount.Load() != 1 || stats.RTTMicrosSum.Load() == 0 {
		t.Fatalf("rtt accounting: count=%d sum=%d",
			stats.RTTCount.Load(), stats.RTTMicrosSum.Load())
	}
}

// TestUDPLivenessEndToEnd runs the detector over real sockets: a
// partition (Block) silences the peer, which must go suspect then dead;
// healing it must revive the peer and record heartbeat RTTs.
func TestUDPLivenessEndToEnd(t *testing.T) {
	live := &LivenessConfig{
		Interval:     25 * time.Millisecond,
		SuspectAfter: 75 * time.Millisecond,
		DeadAfter:    150 * time.Millisecond,
	}
	a, b, _, _ := pair(t, UDPConfig{Liveness: live}, UDPConfig{Liveness: live})
	_ = b

	// Heartbeats alone must keep the peer alive and measure RTTs.
	waitFor(t, func() bool { return a.Stats().RTTCount.Load() >= 1 }, "first RTT")
	if h := a.PeerHealth()[2]; h.State != PeerAlive {
		t.Fatalf("peer 2 = %v, want alive", h.State)
	}
	if a.Isolated() {
		t.Fatal("node with a live neighbor reports isolated")
	}

	// Partition: a drops all frames to and from 2. With its only neighbor
	// dead, a is isolated.
	a.Block(2)
	waitFor(t, func() bool { return a.PeerHealth()[2].State == PeerDead }, "peer death")
	if a.Stats().PeerSuspects.Load() == 0 || a.Stats().PeerDeaths.Load() == 0 {
		t.Fatalf("transition accounting: suspects=%d deaths=%d",
			a.Stats().PeerSuspects.Load(), a.Stats().PeerDeaths.Load())
	}
	if !a.Isolated() {
		t.Fatal("all neighbors dead but not isolated")
	}
	if a.Stats().PartitionDropped.Load() == 0 {
		t.Fatal("partition drops not accounted")
	}

	// Heal: the next probe exchange revives the peer.
	a.Unblock(2)
	waitFor(t, func() bool { return a.PeerHealth()[2].State == PeerAlive }, "peer recovery")
	if a.Stats().PeerRecoveries.Load() == 0 {
		t.Fatal("recovery not accounted")
	}
	if a.Stats().HeartbeatsSent.Load() == 0 || a.Stats().HeartbeatsRecv.Load() == 0 {
		t.Fatalf("heartbeat accounting: sent=%d recv=%d",
			a.Stats().HeartbeatsSent.Load(), a.Stats().HeartbeatsRecv.Load())
	}
}
