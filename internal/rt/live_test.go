package rt_test

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/rt"
	"diffusion/internal/telemetry"
	"diffusion/internal/transport"
)

// liveNode is one diffusion node on its own wall-clock loop: the exact
// wiring cmd/diffnode uses, here over the in-process mesh.
type liveNode struct {
	loop *rt.Loop
	node *core.Node
	link *transport.MeshLink
	reg  *telemetry.Registry
}

// newLiveCluster builds n nodes in a line (IDs 1..n) with compressed
// protocol timings so live tests complete in a couple of wall seconds.
func newLiveCluster(t *testing.T, n int) []*liveNode {
	t.Helper()
	mesh := transport.NewMesh(42)
	nodes := make([]*liveNode, n)
	for i := 0; i < n; i++ {
		id := uint32(i + 1)
		ln := &liveNode{loop: rt.NewLoop(), reg: telemetry.NewRegistry("node")}
		// Receptions cross from the sender's goroutine onto this node's
		// loop: the single place concurrency is bridged.
		ln.link = mesh.Attach(id, func(from uint32, payload []byte) {
			ln.loop.Post(func() { ln.node.Receive(from, payload) })
		})
		err := ln.loop.Call(func() {
			ln.node = core.NewNode(core.Config{
				Clock:               ln.loop,
				Rand:                rand.New(rand.NewSource(int64(id))),
				Link:                ln.link,
				InterestInterval:    300 * time.Millisecond,
				ExploratoryInterval: 10 * time.Second, // only the first send explores
				ForwardJitter:       5 * time.Millisecond,
			})
			ln.node.Instrument(ln.reg)
		})
		if err != nil {
			t.Fatal(err)
		}
		ln.link.Stats().Instrument(ln.reg)
		nodes[i] = ln
		if i > 0 {
			mesh.Connect(uint32(i), id)
		}
	}
	t.Cleanup(func() {
		for _, ln := range nodes {
			ln.loop.Stop()
		}
		mesh.Close()
	})
	return nodes
}

// TestLiveDiffusionPhases is TestDiffusionPhases run in real time: the
// same core code paths — interest propagation, gradient setup, exploratory
// delivery, reinforcement, plain-data delivery — driven by rt.Loop wall
// clocks and the in-process transport instead of the simulator.
func TestLiveDiffusionPhases(t *testing.T) {
	nodes := newLiveCluster(t, 4)
	sink, source := nodes[0], nodes[3]

	var mu sync.Mutex
	var got []message.Class
	interest := attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "surveillance"),
		attr.Int32Attr(attr.KeyInterval, attr.IS, 1000),
	}
	if err := sink.loop.Call(func() {
		sink.node.Subscribe(interest, func(m *message.Message) {
			mu.Lock()
			got = append(got, m.Class)
			mu.Unlock()
		})
	}); err != nil {
		t.Fatal(err)
	}

	var pub core.PublicationHandle
	source.loop.Call(func() {
		pub = source.node.Publish(attr.Vec{
			attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
		})
	})

	// Give interests two refresh intervals to establish gradients, then
	// report every 50 ms.
	time.Sleep(700 * time.Millisecond)
	seq := int32(0)
	tick := source.loop.Every(0, 50*time.Millisecond, func() {
		seq++
		source.node.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	time.Sleep(1500 * time.Millisecond)
	tick.Cancel()
	source.loop.Call(func() {})        // drain the in-flight firing, freeze seq
	time.Sleep(100 * time.Millisecond) // let the last events cross 3 hops

	mu.Lock()
	deliveries := append([]message.Class(nil), got...)
	mu.Unlock()
	var sent int32
	source.loop.Call(func() { sent = seq })

	if len(deliveries) == 0 {
		t.Fatal("sink received nothing")
	}
	if deliveries[0] != message.ExploratoryData {
		t.Errorf("first delivery should be exploratory, got %v", deliveries[0])
	}
	plain := 0
	for _, c := range deliveries {
		if c == message.Data {
			plain++
		}
	}
	if plain == 0 {
		t.Error("reinforced path should carry plain data messages")
	}
	// Lossless in-process links, 3 hops: expect nearly every event.
	if float64(len(deliveries)) < 0.9*float64(sent) {
		t.Errorf("delivered %d of %d events, want >= 90%%", len(deliveries), sent)
	}

	// The wall-clock snapshot path: every node's registry must show link
	// traffic and the source must account its data sends.
	for i, ln := range nodes {
		var snap map[string]float64
		if err := ln.loop.Call(func() { snap = ln.reg.Snapshot() }); err != nil {
			t.Fatal(err)
		}
		if snap["transport.sent"] == 0 {
			t.Errorf("node %d transport.sent = 0", i+1)
		}
		if snap["core.bytes_sent"] == 0 {
			t.Errorf("node %d core.bytes_sent = 0", i+1)
		}
	}
}

// TestLiveShutdownLeavesNoGoroutines builds a live cluster, runs traffic,
// tears everything down, and checks the goroutine count settles — the
// in-process form of diffnode's clean-SIGTERM guarantee.
func TestLiveShutdownLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	mesh := transport.NewMesh(7)
	loops := make([]*rt.Loop, 3)
	for i := range loops {
		id := uint32(i + 1)
		loop := rt.NewLoop()
		loops[i] = loop
		var node *core.Node
		link := mesh.Attach(id, func(from uint32, payload []byte) {
			loop.Post(func() { node.Receive(from, payload) })
		})
		loop.Call(func() {
			node = core.NewNode(core.Config{
				Clock:            loop,
				Rand:             rand.New(rand.NewSource(int64(id))),
				Link:             link,
				InterestInterval: 50 * time.Millisecond,
				ForwardJitter:    2 * time.Millisecond,
			})
			if id == 1 {
				node.Subscribe(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "x")}, nil)
			}
		})
		if i > 0 {
			mesh.Connect(uint32(i), id)
		}
	}
	time.Sleep(200 * time.Millisecond)
	for _, l := range loops {
		l.Stop()
	}
	mesh.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, n)
	}
}
