package rt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffusion/internal/sim"
)

// These tests hammer the Loop shutdown contract under the race detector:
// Post, Call, After and Every racing Stop must neither deadlock nor run a
// callback after Stop has returned. The contract matters because every
// producer in the live stack — transport reader goroutines, HTTP
// handlers, retransmit and heartbeat timers — crosses onto the loop while
// the daemon's shutdown path stops it.

// TestPostRacingStop: posts from many goroutines race Stop. Every posted
// callback either runs before Stop returns or is dropped (Post reports
// false); none may run after.
func TestPostRacingStop(t *testing.T) {
	for round := 0; round < 50; round++ {
		l := NewLoop()
		var stopped atomic.Bool
		var accepted, executed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					ok := l.Post(func() {
						if stopped.Load() {
							t.Error("callback ran after Stop returned")
						}
						executed.Add(1)
					})
					if ok {
						accepted.Add(1)
					}
				}
			}()
		}
		l.Stop()
		stopped.Store(true)
		wg.Wait()
		// Producers kept posting after Stop; those must all have been
		// refused, so acceptance and execution match exactly.
		if accepted.Load() != executed.Load() {
			t.Fatalf("accepted %d posts but executed %d", accepted.Load(), executed.Load())
		}
	}
}

// TestCallRacingStop: synchronous Calls racing Stop must return — either
// nil after running, or ErrStopped — never hang, and never run the
// function while reporting ErrStopped.
func TestCallRacingStop(t *testing.T) {
	for round := 0; round < 50; round++ {
		l := NewLoop()
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					ran := false
					err := l.Call(func() { ran = true })
					switch {
					case err == nil && !ran:
						t.Error("Call returned nil without running fn")
					case err == ErrStopped && ran:
						t.Error("Call ran fn but reported ErrStopped")
					case err != nil && err != ErrStopped:
						t.Errorf("Call returned unexpected error %v", err)
					}
				}
			}()
		}
		// Let some calls through before the stop lands.
		time.Sleep(time.Duration(round%3) * 100 * time.Microsecond)
		l.Stop()
		wg.Wait() // must terminate: a hung Call fails the test by timeout
	}
}

// TestTimerRacingStop: After timers expiring around the instant of Stop
// must either fire before Stop returns or never; Cancel racing both must
// keep its guarantee (true means the callback will not run).
func TestTimerRacingStop(t *testing.T) {
	for round := 0; round < 50; round++ {
		l := NewLoop()
		var stopped atomic.Bool
		var fired [64]atomic.Bool
		var cancelled [64]atomic.Bool
		timers := make([]struct{ c func() bool }, 64)
		for i := 0; i < 64; i++ {
			i := i
			// Delays straddle the Stop instant.
			tm := l.After(time.Duration(i%8)*50*time.Microsecond, func() {
				if stopped.Load() {
					t.Error("timer callback ran after Stop returned")
				}
				fired[i].Store(true)
			})
			timers[i].c = tm.Cancel
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i += 2 { // cancel half, racing dispatch
				if timers[i].c() {
					cancelled[i].Store(true)
				}
			}
		}()
		time.Sleep(100 * time.Microsecond)
		l.Stop()
		stopped.Store(true)
		wg.Wait()
		for i := range fired {
			if cancelled[i].Load() && fired[i].Load() {
				t.Fatalf("timer %d fired although Cancel returned true", i)
			}
		}
	}
}

// TestEveryRacingStop: repeating timers racing Stop must stop re-arming
// and never fire after Stop returns; Cancel after Stop is a safe no-op.
func TestEveryRacingStop(t *testing.T) {
	for round := 0; round < 30; round++ {
		l := NewLoop()
		var stopped atomic.Bool
		var ticks [8]sim.Timer
		for i := range ticks {
			ticks[i] = l.Every(0, 100*time.Microsecond, func() {
				if stopped.Load() {
					t.Error("Every callback ran after Stop returned")
				}
			})
		}
		time.Sleep(300 * time.Microsecond)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < len(ticks); i += 2 {
				ticks[i].Cancel()
			}
		}()
		l.Stop()
		stopped.Store(true)
		wg.Wait()
		for _, tk := range ticks {
			tk.Cancel() // post-Stop cancel must not panic or hang
		}
	}
}
