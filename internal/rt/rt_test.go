package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoopSerializesCallbacks hammers one loop from many goroutines and
// checks callbacks never overlap: the invariant that lets lock-free node
// code run live.
func TestLoopSerializesCallbacks(t *testing.T) {
	l := NewLoop()
	defer l.Stop()

	var inside, overlaps, ran int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Post(func() {
					if atomic.AddInt32(&inside, 1) != 1 {
						atomic.AddInt32(&overlaps, 1)
					}
					atomic.AddInt32(&ran, 1)
					atomic.AddInt32(&inside, -1)
				})
			}
		}()
	}
	wg.Wait()
	if err := l.Call(func() {}); err != nil {
		t.Fatal(err)
	}
	if overlaps != 0 {
		t.Fatalf("%d overlapping callback executions", overlaps)
	}
	if ran != 8*200 {
		t.Fatalf("ran %d callbacks, want %d", ran, 8*200)
	}
}

// TestLoopPreservesPostOrder checks same-goroutine posts execute FIFO.
func TestLoopPreservesPostOrder(t *testing.T) {
	l := NewLoop()
	defer l.Stop()

	var got []int
	for i := 0; i < 100; i++ {
		i := i
		l.Post(func() { got = append(got, i) })
	}
	if err := l.Call(func() {}); err != nil {
		t.Fatal(err)
	}
	l.Call(func() {
		for i, v := range got {
			if v != i {
				t.Fatalf("position %d holds %d; posts reordered", i, v)
			}
		}
	})
}

// TestAfterFiresOnLoop checks timers dispatch onto the loop goroutine and
// observe the clock monotonically.
func TestAfterFiresOnLoop(t *testing.T) {
	l := NewLoop()
	defer l.Stop()

	done := make(chan time.Duration, 1)
	before := l.Now()
	l.After(10*time.Millisecond, func() { done <- l.Now() })
	select {
	case at := <-done:
		if at < before {
			t.Fatalf("timer fired at %v, armed at %v", at, before)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

// TestCancelGuaranteesNoRun cancels timers whose underlying time.Timer has
// already expired (dispatch queued behind a blocker): a successful Cancel
// must still win.
func TestCancelGuaranteesNoRun(t *testing.T) {
	l := NewLoop()
	defer l.Stop()

	release := make(chan struct{})
	blocked := make(chan struct{})
	l.Post(func() { close(blocked); <-release })
	<-blocked

	fired := make(chan struct{}, 1)
	tm := l.After(time.Millisecond, func() { fired <- struct{}{} })
	// Let the wall timer expire and queue its dispatch behind the blocker.
	time.Sleep(20 * time.Millisecond)
	cancelled := tm.Cancel()
	close(release)

	if err := l.Call(func() {}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
		if cancelled {
			t.Fatal("Cancel returned true but the callback ran")
		}
	default:
		if !cancelled {
			t.Fatal("callback never ran yet Cancel returned false")
		}
	}
	if tm.Cancel() {
		t.Fatal("second Cancel must report not-pending")
	}
}

// TestEveryRepeatsAndCancels checks the periodic timer fires repeatedly
// and stops firing after Cancel.
func TestEveryRepeatsAndCancels(t *testing.T) {
	l := NewLoop()
	defer l.Stop()

	var n int32
	tm := l.Every(time.Millisecond, time.Millisecond, func() { atomic.AddInt32(&n, 1) })
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&n) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt32(&n) < 3 {
		t.Fatal("periodic timer did not fire repeatedly")
	}
	tm.Cancel()
	l.Call(func() {})
	frozen := atomic.LoadInt32(&n)
	time.Sleep(20 * time.Millisecond)
	l.Call(func() {})
	// One in-flight firing may land around the Cancel; after that the
	// count must not move.
	if d := atomic.LoadInt32(&n) - frozen; d > 1 {
		t.Fatalf("timer fired %d times after Cancel", d)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Every with zero period must panic")
		}
	}()
	l.Every(0, 0, func() {})
}

// TestStopDropsLatePostsAndCalls checks post-stop behavior: Post reports
// false, Call returns ErrStopped, and neither blocks.
func TestStopDropsLatePostsAndCalls(t *testing.T) {
	l := NewLoop()
	l.Stop()
	l.Stop() // idempotent
	if l.Post(func() { t.Error("post ran after Stop") }) {
		t.Fatal("Post after Stop must report false")
	}
	if err := l.Call(func() {}); err != ErrStopped {
		t.Fatalf("Call after Stop = %v, want ErrStopped", err)
	}
}

// TestLoopGoroutineExit checks Stop releases the loop goroutine — the
// leak check the daemon's clean-shutdown guarantee builds on.
func TestLoopGoroutineExit(t *testing.T) {
	before := runtime.NumGoroutine()
	loops := make([]*Loop, 50)
	for i := range loops {
		loops[i] = NewLoop()
		loops[i].After(time.Hour, func() {})
	}
	for _, l := range loops {
		l.Stop()
	}
	if !goroutinesSettle(before) {
		t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
	}
}

// goroutinesSettle polls until the goroutine count returns to within a
// small tolerance of base (timer dispatch goroutines need a moment to
// drain), reporting success.
func goroutinesSettle(base int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}
