// Package rt is the live runtime: it runs the same single-threaded node
// code the simulator drives — internal/core.Node, its filters, and the
// services built on them — against the wall clock, as real processes on
// real transports (see internal/transport and cmd/diffnode).
//
// The paper's daemon is an event-driven, single-threaded process; the
// simulator preserves that by executing every node callback on one event
// loop. Loop preserves it in real time: one goroutine per node owns all of
// that node's protocol state, and everything that touches the node — timer
// callbacks, link-layer receptions, control-plane requests — is posted onto
// the loop and executed serially in arrival order. Node logic therefore
// needs no locks and runs unmodified under either driver.
//
// Loop implements sim.Clock, so a core.Config{Clock: loop, ...} node keeps
// the exact code paths exercised by the deterministic tests. Timers are
// time.Timer underneath but fire on the loop, and Cancel retains the
// simulator's guarantee: a successful Cancel means the callback will not
// run, even if the underlying timer already expired and its dispatch is
// sitting in the loop's queue.
package rt

import (
	"errors"
	"sync"
	"time"

	"diffusion/internal/sim"
)

// ErrStopped is returned by Call once the loop has been stopped.
var ErrStopped = errors.New("rt: loop is stopped")

// Loop is a serialized wall-clock executor: a single goroutine that owns
// one node's state and runs every callback in submission order. It
// implements sim.Clock.
type Loop struct {
	start time.Time

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []func()
	stopping bool
	stopped  bool
	done     chan struct{}
}

// NewLoop starts a loop anchored at the current instant. The caller must
// eventually Stop it to release the goroutine.
func NewLoop() *Loop {
	l := &Loop{start: time.Now(), done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l
}

// run is the loop goroutine: it drains posted callbacks in order until the
// loop is stopped, then executes whatever was already queued and exits.
func (l *Loop) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.stopping {
			l.cond.Wait()
		}
		if len(l.queue) == 0 && l.stopping {
			l.stopped = true
			l.mu.Unlock()
			return
		}
		fn := l.queue[0]
		l.queue = l.queue[1:]
		l.mu.Unlock()
		fn()
	}
}

// Post enqueues fn to run on the loop goroutine. It never blocks and is
// safe from any goroutine (link-layer readers, HTTP handlers, timer
// dispatch). After Stop, posts are dropped and Post reports false.
func (l *Loop) Post(fn func()) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stopping {
		return false
	}
	l.queue = append(l.queue, fn)
	l.cond.Signal()
	return true
}

// Call runs fn on the loop goroutine and waits for it to finish — the
// synchronous entry point control planes use to query or mutate node
// state. It must not be called from within a loop callback (that would
// deadlock); loop-resident code simply calls fn directly.
func (l *Loop) Call(fn func()) error {
	ch := make(chan struct{})
	if !l.Post(func() {
		fn()
		close(ch)
	}) {
		return ErrStopped
	}
	<-ch
	return nil
}

// Stop shuts the loop down: already-queued callbacks still run, later
// posts are dropped, and Stop returns once the loop goroutine has exited.
// Timers that fire afterwards are silently discarded. Stop is idempotent
// and must not be called from within a loop callback.
func (l *Loop) Stop() {
	l.mu.Lock()
	l.stopping = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

// Now returns the elapsed wall time since the loop was created, satisfying
// the sim.Clock contract of time-as-offset-from-start.
func (l *Loop) Now() time.Duration { return time.Since(l.start) }

// Start returns the wall-clock instant the loop was anchored at: Now() is
// the offset from it. Span collectors use it to translate the loop's
// node-local timestamps into absolute time.
func (l *Loop) Start() time.Time { return l.start }

// After schedules fn to run on the loop d from now. The returned timer's
// Cancel reports whether the callback was still pending and guarantees it
// will not run.
func (l *Loop) After(d time.Duration, fn func()) sim.Timer {
	if d < 0 {
		d = 0
	}
	t := &timer{loop: l, fn: fn}
	t.t = time.AfterFunc(d, t.dispatch)
	return t
}

// Every schedules fn at now+d and then every period thereafter until the
// returned timer is cancelled, matching sim.Executor.Every. It panics when
// period is not positive.
func (l *Loop) Every(d, period time.Duration, fn func()) sim.Timer {
	if period <= 0 {
		panic("rt: Every requires a positive period")
	}
	rt := &repeatTimer{}
	var arm func(delay time.Duration)
	arm = func(delay time.Duration) {
		rt.mu.Lock()
		if !rt.cancelled {
			rt.inner = l.After(delay, func() {
				rt.mu.Lock()
				dead := rt.cancelled
				rt.mu.Unlock()
				if dead {
					return
				}
				fn()
				arm(period)
			})
		}
		rt.mu.Unlock()
	}
	arm(d)
	return rt
}

// timer is one pending loop callback backed by a time.Timer. Its state is
// guarded by a mutex because Cancel may race with the wall-clock dispatch
// goroutine, unlike in the simulator where everything shares one thread.
type timer struct {
	loop *Loop
	fn   func()
	t    *time.Timer

	mu        sync.Mutex
	fired     bool
	cancelled bool
}

// dispatch runs on the time.Timer's goroutine and hands the callback to
// the loop. The cancelled check happens again on the loop goroutine, so a
// Cancel that lands after dispatch but before execution still wins.
func (t *timer) dispatch() {
	t.loop.Post(func() {
		t.mu.Lock()
		if t.cancelled {
			t.mu.Unlock()
			return
		}
		t.fired = true
		t.mu.Unlock()
		t.fn()
	})
}

// Cancel stops the timer; it reports whether the callback was still
// pending (and is now guaranteed not to run).
func (t *timer) Cancel() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fired || t.cancelled {
		return false
	}
	t.cancelled = true
	t.t.Stop()
	return true
}

// repeatTimer is the cancellation handle for Every.
type repeatTimer struct {
	mu        sync.Mutex
	inner     sim.Timer
	cancelled bool
}

func (r *repeatTimer) Cancel() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cancelled {
		return false
	}
	r.cancelled = true
	if r.inner != nil {
		return r.inner.Cancel()
	}
	return false
}
