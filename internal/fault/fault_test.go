package fault

import (
	"testing"
	"time"

	"diffusion/internal/sim"
)

// fakeTarget records fault calls and serves a scripted energy ramp.
type fakeTarget struct {
	crashes, reboots []uint32
	links            map[[2]uint32]bool
	energy           func(id uint32) float64
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{links: map[[2]uint32]bool{}}
}

func (f *fakeTarget) CrashNode(id uint32)  { f.crashes = append(f.crashes, id) }
func (f *fakeTarget) RebootNode(id uint32) { f.reboots = append(f.reboots, id) }
func (f *fakeTarget) SetLinkDown(a, b uint32, down bool) {
	f.links[[2]uint32{a, b}] = down
}
func (f *fakeTarget) NodeEnergy(id uint32) float64 {
	if f.energy == nil {
		return 0
	}
	return f.energy(id)
}

func TestScriptedCrashAndReboot(t *testing.T) {
	s := sim.New(1)
	ft := newFakeTarget()
	in := New(s, ft)

	in.CrashFor(10*time.Second, 7, 30*time.Second)
	s.RunUntil(15 * time.Second)
	if len(ft.crashes) != 1 || ft.crashes[0] != 7 {
		t.Fatalf("crashes = %v", ft.crashes)
	}
	if !in.NodeDown(7) {
		t.Error("node 7 should be down")
	}
	s.RunUntil(time.Minute)
	if len(ft.reboots) != 1 || ft.reboots[0] != 7 {
		t.Fatalf("reboots = %v", ft.reboots)
	}
	if in.NodeDown(7) {
		t.Error("node 7 should be back up")
	}

	evs := in.Events()
	if len(evs) != 2 || evs[0].Kind != NodeDown || evs[1].Kind != NodeUp {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].At != 10*time.Second || evs[1].At != 40*time.Second {
		t.Errorf("event times = %v, %v", evs[0].At, evs[1].At)
	}
}

func TestCrashIsIdempotent(t *testing.T) {
	s := sim.New(1)
	ft := newFakeTarget()
	in := New(s, ft)
	in.CrashAt(time.Second, 3)
	in.CrashAt(2*time.Second, 3)
	in.RebootAt(3*time.Second, 3)
	in.RebootAt(4*time.Second, 3)
	s.RunUntil(5 * time.Second)
	if len(ft.crashes) != 1 || len(ft.reboots) != 1 {
		t.Errorf("crashes=%v reboots=%v; double faults must be no-ops", ft.crashes, ft.reboots)
	}
}

func TestLinkBlackoutAndPartition(t *testing.T) {
	s := sim.New(1)
	ft := newFakeTarget()
	in := New(s, ft)

	in.LinkDownAt(time.Second, 1, 2)
	in.LinkUpAt(2*time.Second, 1, 2)
	in.PartitionAt(3*time.Second, []uint32{1, 2}, []uint32{3})
	in.HealAt(4*time.Second, []uint32{1, 2}, []uint32{3})

	s.RunUntil(90 * time.Second / 60) // 1.5 s: blackout active
	if !ft.links[[2]uint32{1, 2}] || !ft.links[[2]uint32{2, 1}] {
		t.Error("link 1<->2 should be down in both directions")
	}
	s.RunUntil(3500 * time.Millisecond) // partition active
	if ft.links[[2]uint32{1, 2}] {
		t.Error("link 1<->2 should be restored")
	}
	for _, k := range [][2]uint32{{1, 3}, {3, 1}, {2, 3}, {3, 2}} {
		if !ft.links[k] {
			t.Errorf("partition link %v should be down", k)
		}
	}
	s.RunUntil(5 * time.Second)
	for k, down := range ft.links {
		if down {
			t.Errorf("link %v still down after heal", k)
		}
	}
	sum := in.Summarize()
	if sum.LinkDowns != 3 || sum.LinkUps != 3 {
		t.Errorf("summary = %v", sum)
	}
}

func TestEnergyDepletionKillsPermanently(t *testing.T) {
	s := sim.New(1)
	ft := newFakeTarget()
	// Energy grows linearly: 1 unit per simulated second.
	ft.energy = func(uint32) float64 { return s.Now().Seconds() }
	in := New(s, ft)
	in.DepleteEnergy(5, 100, time.Second)
	s.RunUntil(10 * time.Minute)
	if len(ft.crashes) != 1 || ft.crashes[0] != 5 {
		t.Fatalf("crashes = %v", ft.crashes)
	}
	if len(ft.reboots) != 0 {
		t.Errorf("depleted node rebooted: %v", ft.reboots)
	}
	evs := in.Events()
	if len(evs) != 1 || evs[0].At > 101*time.Second {
		t.Errorf("depletion events = %v (budget 100 at 1 unit/s)", evs)
	}
}

func TestChurnRespectsWindowAndHeals(t *testing.T) {
	s := sim.New(42)
	ft := newFakeTarget()
	in := New(s, ft)
	cfg := ChurnConfig{
		Start: time.Minute,
		Stop:  11 * time.Minute,
		MTBF:  2 * time.Minute,
		MTTR:  30 * time.Second,
		Nodes: []uint32{1, 2, 3},
	}
	in.Churn(cfg)
	s.RunUntil(12 * time.Minute)

	sum := in.Summarize()
	if sum.NodeDowns == 0 {
		t.Fatal("churn injected no crashes in 10 minutes at MTBF 2m")
	}
	if sum.NodeDowns != sum.NodeUps {
		t.Errorf("unbalanced churn: %v", sum)
	}
	for _, id := range cfg.Nodes {
		if in.NodeDown(id) {
			t.Errorf("node %d still down after churn window", id)
		}
	}
	for _, e := range in.Events() {
		if e.At < cfg.Start {
			t.Errorf("event %v fired before the churn window", e)
		}
		if e.Kind == NodeDown && e.At >= cfg.Stop {
			t.Errorf("crash %v fired after the churn window", e)
		}
	}
}

func TestChurnIsDeterministic(t *testing.T) {
	run := func() []Event {
		s := sim.New(7)
		in := New(s, newFakeTarget())
		in.Churn(ChurnConfig{
			Start: 0, Stop: 20 * time.Minute,
			MTBF: 3 * time.Minute, MTTR: time.Minute,
			Nodes: []uint32{1, 2, 3, 4},
		})
		s.RunUntil(20 * time.Minute)
		return in.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestChurnValidation(t *testing.T) {
	s := sim.New(1)
	in := New(s, newFakeTarget())
	for _, cfg := range []ChurnConfig{
		{Start: 0, Stop: time.Minute, MTBF: 0, MTTR: time.Second, Nodes: []uint32{1}},
		{Start: time.Minute, Stop: time.Minute, MTBF: time.Second, MTTR: time.Second, Nodes: []uint32{1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Churn(%+v) did not panic", cfg)
				}
			}()
			in.Churn(cfg)
		}()
	}
}
