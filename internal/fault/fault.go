// Package fault is a deterministic fault scheduler for the simulated
// network. The paper's central robustness claim (sections 3.1 and 6.4) is
// that directed diffusion self-heals: periodic exploratory data
// re-discovers routes after node death and reinforcement re-converges onto
// a working path. This package supplies the failures that claim is about —
// node crashes and reboots, link blackouts, partitions, energy-depletion
// death, and MTBF/MTTR-driven random churn — all driven by the simulation
// clock so every fault scenario is scripted or seeded and exactly
// reproducible.
//
// The injector manipulates the network through the small Target interface,
// which diffusion.Network implements; the package itself knows nothing
// about radios or gradients, only when to pull which plug.
package fault

import (
	"fmt"
	"math/rand"
	"time"

	"diffusion/internal/sim"
)

// Target is what the injector breaks: the network-level fault surface.
// diffusion.Network implements it. Implementations must tolerate repeated
// calls (crashing a crashed node is a no-op).
type Target interface {
	// CrashNode freezes a node: radio off, link queue dropped, protocol
	// timers cancelled.
	CrashNode(id uint32)
	// RebootNode brings a crashed node back with fresh protocol state.
	RebootNode(id uint32)
	// SetLinkDown forces the directed link a→b into or out of blackout.
	SetLinkDown(a, b uint32, down bool)
	// NodeEnergy returns the node's consumed radio energy in model units
	// (energy-depletion faults poll it against a budget).
	NodeEnergy(id uint32) float64
}

// Kind classifies a fault event.
type Kind int

// Fault event kinds.
const (
	NodeDown Kind = iota
	NodeUp
	LinkDown
	LinkUp
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case NodeDown:
		return "node-down"
	case NodeUp:
		return "node-up"
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one injected fault, stamped with the simulation time it fired.
// Link events carry both endpoints; node events leave Peer zero.
type Event struct {
	At   time.Duration
	Kind Kind
	Node uint32
	Peer uint32
}

// String renders the event.
func (e Event) String() string {
	if e.Kind == LinkDown || e.Kind == LinkUp {
		return fmt.Sprintf("%12v %v %d<->%d", e.At, e.Kind, e.Node, e.Peer)
	}
	return fmt.Sprintf("%12v %v %d", e.At, e.Kind, e.Node)
}

// Summary counts injected faults by kind.
type Summary struct {
	NodeDowns, NodeUps, LinkDowns, LinkUps int
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("%d node-down, %d node-up, %d link-down, %d link-up",
		s.NodeDowns, s.NodeUps, s.LinkDowns, s.LinkUps)
}

// Env is the scheduling surface the injector runs on: the global clock
// and seeded random stream of a sim.Scheduler or sim.Kernel. Faults are
// global events — they touch radios and MACs across the whole network —
// so they always run in global context, between the kernel's parallel
// windows.
type Env interface {
	sim.Clock
	Rand() *rand.Rand
}

// Injector schedules faults against a target. All randomness (churn
// inter-fault times) comes from the engine's seeded source, so a fault
// scenario replays exactly from its seed.
type Injector struct {
	sched  Env
	target Target
	down   map[uint32]bool
	events []Event
	script []string
}

// New returns an injector driving target on the engine's global clock.
func New(s Env, target Target) *Injector {
	return &Injector{sched: s, target: target, down: map[uint32]bool{}}
}

// Events returns every fault fired so far, in time order (shared slice; do
// not mutate).
func (in *Injector) Events() []Event { return in.events }

// Summarize tallies the fired events by kind.
func (in *Injector) Summarize() Summary {
	var s Summary
	for _, e := range in.events {
		switch e.Kind {
		case NodeDown:
			s.NodeDowns++
		case NodeUp:
			s.NodeUps++
		case LinkDown:
			s.LinkDowns++
		case LinkUp:
			s.LinkUps++
		}
	}
	return s
}

// NodeDown reports whether the injector currently holds id down.
func (in *Injector) NodeDown(id uint32) bool { return in.down[id] }

// Script returns one human-readable line per scheduled fault scenario, in
// scheduling order — the self-describing fault script exported in trace
// headers.
func (in *Injector) Script() []string { return in.script }

// note appends one script line.
func (in *Injector) note(format string, args ...any) {
	in.script = append(in.script, fmt.Sprintf(format, args...))
}

// record appends an event stamped now.
func (in *Injector) record(k Kind, node, peer uint32) {
	in.events = append(in.events, Event{At: in.sched.Now(), Kind: k, Node: node, Peer: peer})
}

// crash takes id down immediately (idempotent).
func (in *Injector) crash(id uint32) {
	if in.down[id] {
		return
	}
	in.down[id] = true
	in.target.CrashNode(id)
	in.record(NodeDown, id, 0)
}

// reboot brings id back up immediately (idempotent).
func (in *Injector) reboot(id uint32) {
	if !in.down[id] {
		return
	}
	delete(in.down, id)
	in.target.RebootNode(id)
	in.record(NodeUp, id, 0)
}

// after schedules fn at absolute simulation time at (immediately if at has
// passed).
func (in *Injector) after(at time.Duration, fn func()) {
	in.sched.After(at-in.sched.Now(), fn)
}

// CrashAt schedules a node crash at absolute simulation time at.
func (in *Injector) CrashAt(at time.Duration, id uint32) {
	in.note("crash node %d at %v", id, at)
	in.after(at, func() { in.crash(id) })
}

// RebootAt schedules a reboot at absolute simulation time at.
func (in *Injector) RebootAt(at time.Duration, id uint32) {
	in.note("reboot node %d at %v", id, at)
	in.after(at, func() { in.reboot(id) })
}

// CrashFor schedules an outage: crash at at, reboot outage later.
func (in *Injector) CrashFor(at time.Duration, id uint32, outage time.Duration) {
	in.CrashAt(at, id)
	in.RebootAt(at+outage, id)
}

// LinkDownAt schedules a bidirectional blackout of the a↔b link at the
// given absolute time.
func (in *Injector) LinkDownAt(at time.Duration, a, b uint32) {
	in.note("link %d<->%d down at %v", a, b, at)
	in.after(at, func() {
		in.target.SetLinkDown(a, b, true)
		in.target.SetLinkDown(b, a, true)
		in.record(LinkDown, a, b)
	})
}

// LinkUpAt schedules the a↔b link's restoration.
func (in *Injector) LinkUpAt(at time.Duration, a, b uint32) {
	in.note("link %d<->%d up at %v", a, b, at)
	in.after(at, func() {
		in.target.SetLinkDown(a, b, false)
		in.target.SetLinkDown(b, a, false)
		in.record(LinkUp, a, b)
	})
}

// PartitionAt schedules a network partition: every link between groupA and
// groupB goes dark at at. Heal it with HealAt.
func (in *Injector) PartitionAt(at time.Duration, groupA, groupB []uint32) {
	for _, a := range groupA {
		for _, b := range groupB {
			in.LinkDownAt(at, a, b)
		}
	}
}

// HealAt schedules the partition's repair.
func (in *Injector) HealAt(at time.Duration, groupA, groupB []uint32) {
	for _, a := range groupA {
		for _, b := range groupB {
			in.LinkUpAt(at, a, b)
		}
	}
}

// DepleteEnergy kills id permanently once its consumed radio energy
// reaches budget (model units, per Target.NodeEnergy), polling every
// checkEvery. This is the energy-depletion death mode: unlike churn
// outages the node never reboots — batteries do not recharge.
func (in *Injector) DepleteEnergy(id uint32, budget float64, checkEvery time.Duration) {
	if checkEvery <= 0 {
		checkEvery = 10 * time.Second
	}
	in.note("deplete node %d at energy budget %g (poll %v)", id, budget, checkEvery)
	var poll func()
	poll = func() {
		if in.down[id] {
			return // crashed by something else; stay down
		}
		if in.target.NodeEnergy(id) >= budget {
			in.crash(id)
			return
		}
		in.sched.After(checkEvery, poll)
	}
	in.sched.After(checkEvery, poll)
}

// ChurnConfig drives random node churn: each listed node independently
// alternates between up-times drawn from an exponential with mean MTBF and
// outages drawn from an exponential with mean MTTR, between the Start and
// Stop simulation times. Nodes down at Stop are rebooted then, so the
// network always ends whole.
type ChurnConfig struct {
	Start, Stop time.Duration
	MTBF, MTTR  time.Duration
	Nodes       []uint32
}

// Churn schedules the configured churn process. Panics on non-positive
// MTBF/MTTR or an empty window (scenario-construction errors).
func (in *Injector) Churn(cfg ChurnConfig) {
	if cfg.MTBF <= 0 || cfg.MTTR <= 0 {
		panic(fmt.Sprintf("fault: churn requires positive MTBF/MTTR, got %v/%v", cfg.MTBF, cfg.MTTR))
	}
	if cfg.Stop <= cfg.Start {
		panic(fmt.Sprintf("fault: churn window [%v,%v) is empty", cfg.Start, cfg.Stop))
	}
	in.note("churn %d nodes mtbf=%v mttr=%v window=[%v,%v)",
		len(cfg.Nodes), cfg.MTBF, cfg.MTTR, cfg.Start, cfg.Stop)
	for _, id := range cfg.Nodes {
		in.scheduleFailure(id, cfg, cfg.Start+in.expDraw(cfg.MTBF))
	}
	in.after(cfg.Stop, func() {
		for _, id := range cfg.Nodes {
			in.reboot(id)
		}
	})
}

// scheduleFailure arms one node's next crash at absolute time at, then
// chains the reboot and the following failure.
func (in *Injector) scheduleFailure(id uint32, cfg ChurnConfig, at time.Duration) {
	if at >= cfg.Stop {
		return
	}
	in.after(at, func() {
		in.crash(id)
		back := in.sched.Now() + in.expDraw(cfg.MTTR)
		if back >= cfg.Stop {
			return // the end-of-window sweep reboots it
		}
		in.after(back, func() {
			in.reboot(id)
			in.scheduleFailure(id, cfg, in.sched.Now()+in.expDraw(cfg.MTBF))
		})
	})
}

// expDraw samples an exponential holding time with the given mean.
func (in *Injector) expDraw(mean time.Duration) time.Duration {
	return time.Duration(in.sched.Rand().ExpFloat64() * float64(mean))
}
