package diffusion_test

import (
	"bytes"
	"testing"
	"time"

	"diffusion"
)

// TestFullSystemSoak runs everything at once on the testbed for an hour of
// virtual time: the Figure 8 aggregation workload, a nested query, energy
// scans, a congestion-controlled flow, a bulk transfer, and a mote tier —
// all sharing one 13 kb/s radio. It asserts that every subsystem makes
// progress and that the run is deterministic end to end.
func TestFullSystemSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("hour-long soak; skipped with -short")
	}
	type outcome struct {
		events     int
		audio      int
		scan       int
		bulk       int
		moteUp     int
		ctlRate    float64
		totalBytes int
		maxEntries int
		maxSeen    int
		maxExpFrom int
	}
	run := func() outcome {
		var o outcome
		// The mote tier borrows two cluster nodes; everything else keeps
		// its paper role.
		net := diffusion.NewNetwork(diffusion.NetworkConfig{
			Seed:      1234,
			Topology:  diffusion.TestbedTopology(),
			MoteNodes: []uint32{17, 16}, // radio neighbors in the cluster
		})
		interest, publication := surveillance()

		// Figure 8 workload: two sources, suppression everywhere.
		for _, id := range net.IDs() {
			if id == 17 || id == 16 {
				continue
			}
			// Scoped to the surveillance flow: a blanket filter would
			// treat all same-scan monitoring replies as duplicates.
			net.NewSuppression(net.Node(id), diffusion.SuppressionOptions{
				Pattern: diffusion.Attributes{
					diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
				},
			})
		}
		distinct := map[int32]bool{}
		fb := net.NewFlowFeedback(net.Node(diffusion.TestbedSink), "surveillance", 30*time.Second)
		net.Node(diffusion.TestbedSink).Subscribe(interest, func(m *diffusion.Message) {
			if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
				distinct[a.Val.Int32()] = true
				fb.Saw(a.Val.Int32())
			}
		})
		srcs := []uint32{25, 22}
		ctl := net.NewFlowController(net.Node(srcs[0]), "surveillance", 30*time.Second)
		pubs := make([]diffusion.PublicationHandle, len(srcs))
		for i, id := range srcs {
			pubs[i] = net.Node(id).Publish(publication)
		}
		seq := int32(0)
		net.Every(6*time.Second, func() {
			seq++
			for i, id := range srcs {
				if id == srcs[0] && !ctl.Admit() {
					continue
				}
				net.Node(id).Send(pubs[i], diffusion.Attributes{
					diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
					diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 40)),
				})
			}
		})

		// Nested query: audio node sub-tasks light 13.
		resp := diffusion.NewNestedQueryResponder(diffusion.NestedQueryConfig{
			Node: net.Node(diffusion.TestbedAudio).Node,
			TriggerWatch: diffusion.Attributes{
				diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
				diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
			},
			InitialInterest: diffusion.Attributes{
				diffusion.String(diffusion.KeyType, diffusion.EQ, "light"),
			},
			Publication: diffusion.Attributes{
				diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
			},
			OnInitial: func(m *diffusion.Message) diffusion.Attributes {
				s, _ := m.Attrs.FindActual(diffusion.KeySequence)
				return diffusion.Attributes{s}
			},
		})
		_ = resp
		audioHeard := 0
		net.Node(diffusion.TestbedUser).Subscribe(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.EQ, "audio"),
		}, func(*diffusion.Message) { audioHeard++ })
		lightPub := net.Node(13).Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "light"),
		})
		lseq := int32(0)
		net.Every(time.Minute, func() {
			lseq++
			net.Node(13).Send(lightPub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, lseq),
			})
		})

		// Energy scans at the user.
		for _, id := range net.IDs() {
			if id == 17 || id == 16 {
				continue
			}
			net.NewEnergyScanResponder(net.Node(id), 100_000, 1.0)
			// The fold window exceeds the responders' reply jitter so most
			// replies ride composites instead of travelling solo.
			net.NewScanAggregator(net.Node(id), "energy-scan", 3*time.Second)
		}
		col := net.NewScanCollector(net.Node(diffusion.TestbedUser), "energy-scan", nil)
		var scanID int32
		net.After(30*time.Minute, func() { scanID = col.Start() })

		// Bulk transfer from the sink side to the user.
		blob := bytes.Repeat([]byte{0xAB}, 2048)
		net.OfferBulk(net.Node(24), "soak-object", blob)
		var fetched []byte
		net.FetchBulk(net.Node(diffusion.TestbedUser), "soak-object", func(b []byte) { fetched = b })

		// Mote tier behind a gateway at node 14 (mote side is node 17).
		gwMote := net.Mote(17)
		diffusion.NewGateway(net.Node(14), gwMote, []diffusion.GatewayMapping{{
			Tag: 5,
			Watch: diffusion.Attributes{
				diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
				diffusion.String(diffusion.KeyType, diffusion.IS, "photo"),
			},
			Publication: diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "photo")},
		}})
		moteReadings := 0
		net.Node(diffusion.TestbedSink).Subscribe(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.EQ, "photo"),
		}, func(*diffusion.Message) { moteReadings++ })
		leaf := net.Mote(16)
		net.Every(30*time.Second, func() { leaf.Send(5, 321) })

		net.Run(time.Hour)

		o.events = len(distinct)
		o.audio = audioHeard
		o.scan = col.Result(scanID).Count()
		o.bulk = len(fetched)
		o.moteUp = moteReadings
		o.ctlRate = ctl.Rate()
		o.totalBytes = net.TotalDiffusionBytes()
		for _, n := range net.Nodes() {
			if e := n.Entries(); e > o.maxEntries {
				o.maxEntries = e
			}
			if s := n.SeenSize(); s > o.maxSeen {
				o.maxSeen = s
			}
			if x := n.ExpFromSize(); x > o.maxExpFrom {
				o.maxExpFrom = x
			}
		}
		return o
	}

	o := run()
	if o.events < 300 {
		t.Errorf("surveillance delivered only %d distinct events", o.events)
	}
	if o.audio < 20 {
		t.Errorf("nested query produced only %d audio deliveries", o.audio)
	}
	if o.scan < 6 {
		t.Errorf("energy scan covered only %d nodes", o.scan)
	}
	if o.bulk != 2048 {
		t.Errorf("bulk transfer fetched %d of 2048 bytes", o.bulk)
	}
	if o.moteUp < 50 {
		t.Errorf("mote tier delivered only %d readings", o.moteUp)
	}
	if o.ctlRate <= 0 || o.ctlRate > 1 {
		t.Errorf("controller rate %v", o.ctlRate)
	}
	// After an hour of traffic the housekeeping GC must have kept every
	// per-node table bounded by the active workload, not by run length:
	// a handful of distinct interests, and a seen/exploratory cache no
	// larger than the traffic of one SeenTTL window.
	if o.maxEntries > 20 {
		t.Errorf("interest table grew to %d entries", o.maxEntries)
	}
	if o.maxSeen > 2000 {
		t.Errorf("seen cache grew to %d entries", o.maxSeen)
	}
	if o.maxExpFrom > 2000 {
		t.Errorf("exploratory-source table grew to %d entries", o.maxExpFrom)
	}
	// Determinism across the whole stack.
	if o2 := run(); o != o2 {
		t.Errorf("soak run is not deterministic:\n%+v\n%+v", o, o2)
	}
}

// TestChurnSoak runs the surveillance workload on the testbed for half an
// hour of virtual time while every relay churns under an MTBF/MTTR
// process. It asserts the network keeps delivering, the protocol tables
// stay bounded through the crash/reboot cycles, and the whole faulted run
// is deterministic.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("long churn soak; skipped with -short")
	}
	type outcome struct {
		events  int
		crashes int
		reboots int
		maxSeen int
		totalB  int
	}
	run := func() outcome {
		net := diffusion.NewNetwork(diffusion.NetworkConfig{
			Seed:     777,
			Topology: diffusion.TestbedTopology(),
		})
		interest, publication := surveillance()
		source := diffusion.TestbedSources()[3]
		distinct := map[int32]bool{}
		net.Node(diffusion.TestbedSink).Subscribe(interest, func(m *diffusion.Message) {
			if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
				distinct[a.Val.Int32()] = true
			}
		})
		src := net.Node(source)
		pub := src.Publish(publication)
		seq := int32(0)
		net.Every(6*time.Second, func() {
			seq++
			src.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 50)),
			})
		})
		var relays []uint32
		for _, id := range net.IDs() {
			if id != diffusion.TestbedSink && id != source {
				relays = append(relays, id)
			}
		}
		inj := net.NewFaultInjector()
		inj.Churn(diffusion.ChurnConfig{
			Start: 2 * time.Minute,
			Stop:  28 * time.Minute,
			MTBF:  3 * time.Minute,
			MTTR:  time.Minute,
			Nodes: relays,
		})
		net.Run(30 * time.Minute)

		var o outcome
		o.events = len(distinct)
		sum := inj.Summarize()
		o.crashes, o.reboots = sum.NodeDowns, sum.NodeUps
		for _, n := range net.Nodes() {
			if s := n.SeenSize(); s > o.maxSeen {
				o.maxSeen = s
			}
		}
		o.totalB = net.TotalDiffusionBytes()
		return o
	}
	o := run()
	if o.crashes < 5 {
		t.Errorf("churn injected only %d crashes in 26 minutes", o.crashes)
	}
	if o.reboots < o.crashes {
		t.Errorf("%d crashes but %d reboots; churn must heal what it breaks", o.crashes, o.reboots)
	}
	if o.events < 50 {
		t.Errorf("only %d distinct events delivered under churn", o.events)
	}
	if o.maxSeen > 2000 {
		t.Errorf("seen cache grew to %d entries through crash/reboot cycles", o.maxSeen)
	}
	if o2 := run(); o != o2 {
		t.Errorf("churn soak is not deterministic:\n%+v\n%+v", o, o2)
	}
}
