package diffusion

import (
	"fmt"
	"io"
	"time"

	"diffusion/internal/core"
	"diffusion/internal/custody"
	"diffusion/internal/energy"
	"diffusion/internal/mac"
	"diffusion/internal/message"
	"diffusion/internal/microdiff"
	"diffusion/internal/radio"
	"diffusion/internal/sim"
	"diffusion/internal/telemetry"
	"diffusion/internal/topo"
)

// Topology places nodes; build one with TestbedTopology, GridTopology,
// LineTopology, RandomTopology, or topo.New for custom layouts.
type Topology = topo.Topology

// Topology constructors, re-exported.
var (
	// TestbedTopology is the paper's Figure 7 testbed: 14 PC/104 nodes on
	// two floors of ISI.
	TestbedTopology = topo.Testbed
	// GridTopology returns a cols×rows grid.
	GridTopology = topo.Grid
	// LineTopology returns n nodes in a line.
	LineTopology = topo.Line
	// RandomTopology places n nodes uniformly at random.
	RandomTopology = topo.Random
)

// Testbed roles from the paper's evaluation.
const (
	TestbedSink  = topo.TestbedSink
	TestbedUser  = topo.TestbedUser
	TestbedAudio = topo.TestbedAudio
)

// TestbedSources returns the Figure 8 sources / Figure 9 light sensors.
func TestbedSources() []uint32 { return topo.TestbedSources() }

// RadioParams configures the wireless channel; MACParams the link layer.
type (
	RadioParams = radio.Params
	MACParams   = mac.Params
)

// Substrate parameter presets.
var (
	// DefaultRadio is the testbed-calibrated lossy channel.
	DefaultRadio = radio.DefaultParams
	// PerfectRadio is loss-free (still rate-limited and collision-prone).
	PerfectRadio = radio.PerfectParams
	// DefaultMAC is the primitive testbed CSMA MAC.
	DefaultMAC = mac.DefaultParams
)

// Handles and callback types of the NR API, re-exported from the core.
type (
	// SubscriptionHandle identifies an active subscription.
	SubscriptionHandle = core.SubscriptionHandle
	// PublicationHandle identifies an active publication.
	PublicationHandle = core.PublicationHandle
	// FilterHandle identifies an installed filter.
	FilterHandle = core.FilterHandle
	// DataCallback receives locally delivered messages.
	DataCallback = core.DataCallback
	// FilterCallback receives messages matching a filter.
	FilterCallback = core.FilterCallback
)

// EnergyRatios is the section 6.1 radio energy model.
type EnergyRatios = energy.Ratios

// PaperEnergyRatios returns the paper's energy model parameters.
func PaperEnergyRatios() EnergyRatios { return energy.PaperRatios() }

// NetworkConfig configures a simulated diffusion network.
type NetworkConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Topology places the nodes (required).
	Topology *Topology
	// Radio and MAC default to the testbed presets when zero.
	Radio *RadioParams
	MAC   *MACParams
	// InterestInterval, GradientLifetime, ExploratoryInterval,
	// ExploratoryEvery, TTL and ForwardJitter configure the diffusion
	// protocol; zero values take the paper's testbed defaults (60 s
	// interests, exploratory data every 60 s). A positive
	// ExploratoryEvery switches to a count-based exploratory cadence.
	InterestInterval    time.Duration
	GradientLifetime    time.Duration
	ExploratoryInterval time.Duration
	ExploratoryEvery    int
	TTL                 uint8
	ForwardJitter       time.Duration
	// DisableNegativeReinforcement turns off duplicate-triggered path
	// teardown (ablation).
	DisableNegativeReinforcement bool
	// Custody gives every node a bounded custody queue (disruption
	// tolerance): reinforced-class data with no forward path is parked
	// and replayed when connectivity returns, instead of dropped. See
	// core.Config.Custody.
	Custody bool
	// CustodyLimit bounds each node's custody queue (0: 1024).
	CustodyLimit int
	// SeenTTL overrides the duplicate-suppression horizon (0: 2m). Mobile
	// and partitioned scenarios must keep it longer than the longest
	// disconnection, so replayed custody is still deduplicated.
	SeenTTL time.Duration
	// EnergyAware spreads reinforcement across exploratory deliverers
	// (see core.Config.EnergyAware).
	EnergyAware bool
	// TraceSampling, in (0,1], enables causal flight-path tracing: each
	// locally originated message is tagged with a 16-bit flow ID with this
	// probability, and every layer touching a sampled message (core, MAC,
	// custody) records a span into the node's span ring (see Spans and
	// Trace.Records). Zero disables tracing; runs are then bit-identical
	// to pre-trace builds — the sampling draw consumes no randomness.
	TraceSampling float64
	// MoteNodes lists topology IDs to instantiate as micro-diffusion
	// motes (second tier) instead of full diffusion nodes. Access them
	// with Mote(id); bridge the tiers with NewGateway.
	MoteNodes []uint32
	// Shards is the number of parallel event shards (sim.Kernel). Zero or
	// one runs the classic sequential path; any value produces bit-for-bit
	// identical results — sharding only changes wall-clock time. Clamped
	// to the node count. Networks with MoteNodes force one shard: a
	// gateway couples a node and a mote into one event context.
	Shards int
}

// Network is a simulated sensor network: one diffusion node per topology
// node over a shared radio channel, driven by a deterministic virtual
// clock.
type Network struct {
	cfg     NetworkConfig
	kern    *sim.Kernel
	channel *radio.Channel
	nodes   map[uint32]*Node
	motes   map[uint32]*Mote
	ports   map[uint32]sim.Port
	order   []uint32
	// down tracks crashed nodes; faultHooks observe every injected fault
	// (see fault.go).
	down       map[uint32]bool
	faultHooks []func(FaultEvent)
	// Telemetry wiring (see telemetry.go): one registry per node plus one
	// for the shared channel, aggregated by the hub; one always-on flight
	// recorder per full node.
	hub        *telemetry.Hub
	regs       map[uint32]*telemetry.Registry
	flights    map[uint32]*telemetry.Flight
	flightSink io.Writer
	// spans holds one flight-path span ring per full node when
	// TraceSampling is enabled (see trace.go and cmd/difftrace paths).
	spans map[uint32]*telemetry.SpanRing
}

// Node is one network node: the diffusion engine plus its link stack. The
// embedded core node provides the paper's NR API — Subscribe, Unsubscribe,
// Publish, Unpublish, Send, AddFilter, RemoveFilter, SendMessageToNext,
// InjectMessage — and the Stats counters.
type Node struct {
	*core.Node
	// MAC is the node's link layer (fragmentation, CSMA, queue stats).
	MAC *mac.Mac
}

// RadioStats returns the node's physical-layer counters.
func (n *Node) RadioStats() radio.TransceiverStats { return n.MAC.Radio().Stats }

// Energy evaluates the energy model on this node's measured radio times.
func (n *Node) Energy(r EnergyRatios, elapsed time.Duration, dutyCycle float64) energy.Breakdown {
	st := n.MAC.Radio().Stats
	return r.Measured(st.TxTime, st.RxTime, elapsed, dutyCycle)
}

// NewNetwork builds the network with one node per topology entry.
func NewNetwork(cfg NetworkConfig) *Network {
	if cfg.Topology == nil {
		panic("diffusion: NetworkConfig.Topology is required")
	}
	rp := radio.DefaultParams()
	if cfg.Radio != nil {
		rp = *cfg.Radio
	}
	mp := mac.DefaultParams()
	if cfg.MAC != nil {
		mp = *cfg.MAC
	}
	if rp.PropDelay <= 0 {
		// The kernel's conservative lookahead needs a positive propagation
		// delay; a nanosecond keeps zero-delay configs running unchanged.
		rp.PropDelay = time.Nanosecond
	}
	shards := cfg.Shards
	if len(cfg.MoteNodes) > 0 {
		// A gateway hands messages between a node and a mote synchronously,
		// coupling two event contexts; run those networks sequentially.
		shards = 1
	}
	if shards < 1 {
		shards = 1
	}
	if n := cfg.Topology.Len(); n > 0 && shards > n {
		shards = n
	}
	kern := sim.NewKernel(sim.KernelConfig{
		Seed:         cfg.Seed,
		Shards:       shards,
		Propagation:  rp.PropDelay,
		TxTurnaround: mp.Turnaround(),
	})
	net := &Network{
		cfg:     cfg,
		kern:    kern,
		channel: radio.NewChannel(kern, cfg.Topology, rp),
		nodes:   map[uint32]*Node{},
		motes:   map[uint32]*Mote{},
		ports:   map[uint32]sim.Port{},
		order:   cfg.Topology.IDs(),
		down:    map[uint32]bool{},
		hub:     telemetry.NewHub(kern.Now),
		regs:    map[uint32]*telemetry.Registry{},
		flights: map[uint32]*telemetry.Flight{},
		spans:   map[uint32]*telemetry.SpanRing{},
	}
	net.channel.Instrument(net.hub.Register(telemetry.NewRegistry("channel")))
	moteSet := map[uint32]bool{}
	for _, id := range cfg.MoteNodes {
		moteSet[id] = true
	}
	// Topology-aware shard assignment: contiguous spatial strips, so most
	// radio neighborhoods stay shard-local.
	partition := cfg.Topology.Partition(shards)
	for _, id := range net.order {
		port := kern.AddNode(id, partition[id])
		net.ports[id] = port
		reg := telemetry.NewRegistry(fmt.Sprintf("node-%d", id))
		net.hub.Register(reg)
		net.regs[id] = reg
		if moteSet[id] {
			var mote *Mote
			m := mac.Attach(port, net.channel, id, mp, func(from uint32, payload []byte) {
				mote.Receive(from, payload)
			})
			mote = microdiff.NewMote(m)
			net.motes[id] = mote
			net.instrumentLink(reg, m)
			continue
		}
		var n *Node
		m := mac.Attach(port, net.channel, id, mp, func(from uint32, payload []byte) {
			n.Receive(from, payload)
		})
		fl := telemetry.NewFlight(telemetry.DefaultFlightSize)
		net.flights[id] = fl
		var cusq *custody.Queue
		if cfg.Custody {
			// Journal-less in the simulator: the queue's partition
			// tolerance is what the scenarios measure, crash durability is
			// the live daemon's concern.
			cusq = custody.NewQueue(cfg.CustodyLimit, nil)
		}
		var ring *telemetry.SpanRing
		if cfg.TraceSampling > 0 {
			ring = telemetry.NewSpanRing(telemetry.DefaultSpanSize)
			net.spans[id] = ring
			m.Trace(ring, peekSpan)
		}
		n = &Node{
			Node: core.NewNode(core.Config{
				Clock:               port,
				Rand:                port.Rand(),
				Link:                m,
				InterestInterval:    cfg.InterestInterval,
				GradientLifetime:    cfg.GradientLifetime,
				ExploratoryInterval: cfg.ExploratoryInterval,
				ExploratoryEvery:    cfg.ExploratoryEvery,
				TTL:                 cfg.TTL,
				ForwardJitter:       cfg.ForwardJitter,
				SeenTTL:             cfg.SeenTTL,
				DisableNegRF:        cfg.DisableNegativeReinforcement,
				Custody:             cusq,
				EnergyAware:         cfg.EnergyAware,
				Flight:              fl,
				TraceSample:         cfg.TraceSampling,
				Spans:               ring,
			}),
			MAC: m,
		}
		net.nodes[id] = n
		n.Node.Instrument(reg)
		net.instrumentLink(reg, m)
	}
	// Stamp every fault into the affected nodes' flight recorders, and dump
	// them when a sink is set (SetFlightDump) so fault-laden runs
	// self-diagnose.
	net.OnFault(net.recordFaultFlight)
	return net
}

// peekSpan extracts a MAC-layer span template from an encoded diffusion
// payload without a full decode; ok only for sampled messages (non-zero
// flow). It keeps the MAC ignorant of the diffusion wire format.
func peekSpan(payload []byte) (telemetry.Span, bool) {
	flow, hop := message.PeekTrace(payload)
	if flow == 0 {
		return telemetry.Span{}, false
	}
	cls, _ := message.PeekClass(payload)
	return telemetry.Span{
		ID: message.PeekID(payload), Flow: flow, Hop: hop, Class: cls,
	}, true
}

// instrumentLink wires a node's MAC, radio and energy metrics onto reg.
func (net *Network) instrumentLink(reg *telemetry.Registry, m *mac.Mac) {
	m.Instrument(reg)
	m.Radio().Instrument(reg)
	reg.AddCollector(func(emit func(string, float64)) {
		st := m.Radio().Stats
		b := energy.PaperRatios().Measured(st.TxTime, st.RxTime, net.kern.Now(), 1.0)
		emit("energy.listen_j", b.Listen)
		emit("energy.receive_j", b.Receive)
		emit("energy.send_j", b.Send)
		emit("energy.total_j", b.Total())
	})
}

// Node returns the node with the given topology ID; it panics on unknown
// IDs (a configuration error).
func (net *Network) Node(id uint32) *Node {
	n, ok := net.nodes[id]
	if !ok {
		panic(fmt.Sprintf("diffusion: no diffusion node %d in topology %q", id, net.cfg.Topology.Name))
	}
	return n
}

// Mote returns the micro-diffusion mote at the given topology ID (listed
// in NetworkConfig.MoteNodes); it panics on unknown IDs.
func (net *Network) Mote(id uint32) *Mote {
	m, ok := net.motes[id]
	if !ok {
		panic(fmt.Sprintf("diffusion: no mote %d in topology %q", id, net.cfg.Topology.Name))
	}
	return m
}

// Nodes returns all full-diffusion nodes in topology order (motes are not
// included; see Mote).
func (net *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(net.order))
	for _, id := range net.order {
		if n, ok := net.nodes[id]; ok {
			out = append(out, n)
		}
	}
	return out
}

// IDs returns the node IDs in topology order.
func (net *Network) IDs() []uint32 {
	out := make([]uint32, len(net.order))
	copy(out, net.order)
	return out
}

// Clock returns the network's global clock, for timers in experiment
// drivers and application setup code. Code running inside a node's
// callbacks must use that node's own clock (NodeEnv) — under a parallel
// kernel, scheduling globally from node context panics.
func (net *Network) Clock() sim.Clock { return net.kern }

// Executor exposes the discrete-event engine.
func (net *Network) Executor() sim.Executor { return net.kern }

// NodeEnv returns the scheduling context of one node: its clock, random
// stream and transmission timer. Per-node services (filters, responders)
// run on it. Panics on unknown IDs.
func (net *Network) NodeEnv(id uint32) sim.Port {
	p, ok := net.ports[id]
	if !ok {
		panic(fmt.Sprintf("diffusion: no node %d in topology %q", id, net.cfg.Topology.Name))
	}
	return p
}

// Now returns the current simulated time.
func (net *Network) Now() time.Duration { return net.kern.Now() }

// After schedules fn once, d from now, in global context.
func (net *Network) After(d time.Duration, fn func()) sim.Timer {
	return net.kern.After(d, fn)
}

// Every schedules fn every period (first firing after one period), in
// global context.
func (net *Network) Every(period time.Duration, fn func()) sim.Timer {
	return net.kern.Every(period, period, fn)
}

// Run advances the simulation by d of virtual time.
func (net *Network) Run(d time.Duration) {
	net.kern.RunUntil(net.kern.Now() + d)
}

// RunRealtime advances the simulation by d of virtual time, pacing event
// execution against the wall clock scaled by speed (1 = real time, 10 =
// ten times faster). All node logic still runs deterministically on the
// single simulation thread; only the pacing is real — this is how the
// examples run "live" without any concurrency in the protocol code.
// Speeds <= 0 behave like Run.
func (net *Network) RunRealtime(d time.Duration, speed float64) {
	if speed <= 0 {
		net.Run(d)
		return
	}
	horizon := net.kern.Now() + d
	wallStart := time.Now()
	virtStart := net.kern.Now()
	for {
		at, ok := net.kern.NextEventAt()
		if !ok || at > horizon {
			break
		}
		wait := time.Duration(float64(at-virtStart)/speed) - time.Since(wallStart)
		if wait > 0 {
			time.Sleep(wait)
		}
		net.kern.RunUntil(at)
	}
	net.kern.RunUntil(horizon)
}

// ChannelStats returns medium-wide radio counters (collisions, losses).
func (net *Network) ChannelStats() radio.ChannelStats { return net.channel.Stats() }

// TotalDiffusionBytes sums BytesSent over every node's diffusion layer —
// the paper's Figure 8 metric ("bytes sent from all diffusion modules").
func (net *Network) TotalDiffusionBytes() int {
	total := 0
	for _, n := range net.nodes {
		total += n.Stats.BytesSent
	}
	return total
}
