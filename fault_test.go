package diffusion_test

import (
	"testing"
	"time"

	"diffusion"
)

// faultRun builds a line network with a running surveillance flow, so
// fault tests can observe delivery before and after injected failures.
func faultRun(seed int64, hops int) (net *diffusion.Network, got *int, send func()) {
	net = diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.LineTopology(hops, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	interest, publication := surveillance()
	count := 0
	net.Node(1).Subscribe(interest, func(*diffusion.Message) { count++ })
	src := net.Node(uint32(hops))
	pub := src.Publish(publication)
	seq := int32(0)
	send = func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
		})
	}
	net.Every(5*time.Second, send)
	return net, &count, send
}

func TestCrashNodeSilencesRadioAndCore(t *testing.T) {
	net, got, _ := faultRun(21, 3)
	net.Run(2 * time.Minute)
	if *got == 0 {
		t.Fatal("no deliveries before the crash")
	}
	relay := net.Node(2)
	net.CrashNode(2)
	if !net.NodeDown(2) {
		t.Error("NodeDown(2) must be true after CrashNode")
	}
	net.CrashNode(2) // idempotent

	before := *got
	frames := relay.RadioStats().FramesSent
	net.Run(2 * time.Minute)
	if *got != before {
		t.Errorf("%d deliveries across a crashed single relay", *got-before)
	}
	if relay.RadioStats().FramesSent != frames {
		t.Error("crashed node's radio kept transmitting")
	}
}

func TestRebootNodeRestoresDelivery(t *testing.T) {
	net, got, _ := faultRun(22, 3)
	net.After(2*time.Minute, func() { net.CrashNode(2) })
	net.After(4*time.Minute, func() { net.RebootNode(2) })
	net.Run(4 * time.Minute)
	if net.NodeDown(2) {
		t.Error("NodeDown(2) must be false after RebootNode")
	}
	resumed := *got
	net.Run(4 * time.Minute)
	if *got <= resumed {
		t.Error("delivery did not resume after the relay rebooted")
	}
	// Rebooting a live node is a no-op.
	net.RebootNode(2)
	if net.NodeDown(2) {
		t.Error("RebootNode of a live node flipped its state")
	}
}

func TestReinforcedPathWalksSinkToSource(t *testing.T) {
	net, _, _ := faultRun(23, 4)
	net.Run(3 * time.Minute)
	interest, _ := surveillance()
	path := net.ReinforcedPath(1, interest, 0)
	if len(path) != 4 {
		t.Fatalf("reinforced path = %v, want the full 4-node line", path)
	}
	for i, id := range path {
		if id != uint32(i+1) {
			t.Errorf("path[%d] = %d, want %d (line order)", i, id, i+1)
		}
	}
	// The walk stops at a crashed node.
	net.CrashNode(3)
	path = net.ReinforcedPath(1, interest, 0)
	if len(path) > 3 {
		t.Errorf("path %v continues past crashed node 3", path)
	}
}

func TestChurnedRunsAreDeterministic(t *testing.T) {
	run := func() (int, int) {
		net, got, _ := faultRun(24, 4)
		inj := net.NewFaultInjector()
		inj.Churn(diffusion.ChurnConfig{
			Start: time.Minute,
			Stop:  9 * time.Minute,
			MTBF:  2 * time.Minute,
			MTTR:  30 * time.Second,
			Nodes: []uint32{2, 3},
		})
		net.Run(10 * time.Minute)
		return *got, net.TotalDiffusionBytes()
	}
	g1, b1 := run()
	g2, b2 := run()
	if g1 != g2 || b1 != b2 {
		t.Errorf("same seed diverged under churn: (%d, %d) vs (%d, %d)", g1, b1, g2, b2)
	}
}

func TestEnergyDepletionKillsNode(t *testing.T) {
	net, _, _ := faultRun(25, 3)
	inj := net.NewFaultInjector()
	// The budget is tiny, so the relay dies as soon as the poll notices any
	// radio activity; it must never come back.
	inj.DepleteEnergy(2, 1e-9, 30*time.Second)
	net.Run(5 * time.Minute)
	if !net.NodeDown(2) {
		t.Errorf("relay energy consumed %v, but node never died", net.NodeEnergyConsumed(2))
	}
	downs := 0
	for _, ev := range inj.Events() {
		if ev.Kind == diffusion.FaultNodeDown {
			downs++
		}
	}
	if downs != 1 {
		t.Errorf("depletion recorded %d node-down events, want exactly 1", downs)
	}
}
