package diffusion_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"diffusion"
)

func tracedRun(t *testing.T) (*diffusion.Network, *diffusion.Trace) {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     13,
		Topology: diffusion.LineTopology(4, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	tr := net.NewTrace(0)
	interest, publication := surveillance()
	net.Node(1).Subscribe(interest, nil)
	src := net.Node(4)
	pub := src.Publish(publication)
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
	})
	net.Run(3 * time.Minute)
	return net, tr
}

func TestTraceRecordsAllClasses(t *testing.T) {
	_, tr := tracedRun(t)
	if tr.Len() == 0 {
		t.Fatal("trace empty")
	}
	byClass := tr.CountByClass()
	for _, c := range []diffusion.MessageClass{
		diffusion.ClassInterest,
		diffusion.ClassData,
		diffusion.ClassExploratoryData,
		diffusion.ClassPositiveReinf,
	} {
		if byClass[c] == 0 {
			t.Errorf("no %v events traced", c)
		}
	}
	// Every node processed something.
	byNode := tr.CountByNode()
	for id := uint32(1); id <= 4; id++ {
		if byNode[id] == 0 {
			t.Errorf("node %d has no trace events", id)
		}
	}
}

func TestTraceOriginations(t *testing.T) {
	_, tr := tracedRun(t)
	orig := tr.Originations()
	// The sink originates interests (one per refresh); the source
	// originates data.
	if orig[diffusion.ClassInterest] < 2 {
		t.Errorf("interest originations: %d", orig[diffusion.ClassInterest])
	}
	if orig[diffusion.ClassData]+orig[diffusion.ClassExploratoryData] < 20 {
		t.Errorf("data originations: %v", orig)
	}
	// Originations are a subset of processing events.
	total := 0
	for _, c := range orig {
		total += c
	}
	if total >= tr.Len() {
		t.Error("originations must be fewer than processing events")
	}
}

func TestTraceLatencyProbe(t *testing.T) {
	_, tr := tracedRun(t)
	// Find a data origination at node 4 and its first processing at node
	// 1: latency must be positive and under a second on an idle line.
	for _, e := range tr.Events() {
		if e.Local && e.Node == 4 && e.Class == diffusion.ClassData {
			at, ok := tr.FirstDelivery(e.ID, 1)
			if !ok {
				continue
			}
			lat := at - e.At
			if lat <= 0 || lat > 2*time.Second {
				t.Errorf("implausible 3-hop latency %v", lat)
			}
			return
		}
	}
	t.Error("no traced data origination reached the sink")
}

func TestTraceReports(t *testing.T) {
	_, tr := tracedRun(t)
	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "busiest nodes") {
		t.Errorf("summary:\n%s", buf.String())
	}
	buf.Reset()
	tr.WriteLog(&buf)
	if !strings.Contains(buf.String(), "org") || !strings.Contains(buf.String(), "fwd") {
		t.Error("log should mark originations and forwards")
	}
}

func TestTraceRecordsFaultsAndRepairs(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     15,
		Topology: diffusion.LineTopology(4, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	tr := net.NewTrace(0)
	interest, publication := surveillance()
	net.Node(1).Subscribe(interest, nil)
	src := net.Node(4)
	pub := src.Publish(publication)
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
	})
	// Crash the only relay mid-run and bring it back: on a line there is no
	// alternate path, so repair can only complete after the reboot — and
	// the positive reinforcement that follows is the repair signature.
	net.After(2*time.Minute, func() { net.CrashNode(2) })
	net.After(3*time.Minute, func() { net.RebootNode(2) })
	net.Run(6 * time.Minute)

	faults := tr.Faults()
	if len(faults) != 2 {
		t.Fatalf("traced %d faults, want 2 (down+up): %v", len(faults), faults)
	}
	if faults[0].Kind != diffusion.FaultNodeDown || faults[0].Node != 2 {
		t.Errorf("first fault = %v", faults[0])
	}
	if faults[1].Kind != diffusion.FaultNodeUp || faults[1].Node != 2 {
		t.Errorf("second fault = %v", faults[1])
	}
	if got := tr.Repairs(); got != 1 {
		t.Errorf("Repairs() = %d, want 1 (reinforcement resumed after the outage)", got)
	}

	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "faults: 1 node-down, 1 node-up") ||
		!strings.Contains(buf.String(), "repairs: 1/1") {
		t.Errorf("summary missing fault line:\n%s", buf.String())
	}
	buf.Reset()
	tr.WriteLog(&buf)
	for _, want := range []string{"fault node-down node=2", "fault node-up node=2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("log missing %q", want)
		}
	}
}

func TestTraceRecordsLinkFaults(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     16,
		Topology: diffusion.LineTopology(3, 10),
	})
	tr := net.NewTrace(0)
	inj := net.NewFaultInjector()
	inj.LinkDownAt(time.Minute, 1, 2)
	inj.LinkUpAt(2*time.Minute, 1, 2)
	net.Run(3 * time.Minute)
	downs, ups := 0, 0
	for _, f := range tr.Faults() {
		switch f.Kind {
		case diffusion.FaultLinkDown:
			downs++
		case diffusion.FaultLinkUp:
			ups++
		}
	}
	// LinkDownAt/LinkUpAt act on both directions.
	if downs != 2 || ups != 2 {
		t.Errorf("link faults: %d down, %d up, want 2 each", downs, ups)
	}
	var buf bytes.Buffer
	tr.WriteLog(&buf)
	if !strings.Contains(buf.String(), "fault link-down 1<->2") {
		t.Errorf("log missing link fault:\n%s", buf.String())
	}
}

func TestTraceLimit(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     14,
		Topology: diffusion.LineTopology(3, 10),
	})
	tr := net.NewTrace(10)
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "x"),
	}, nil)
	net.Run(5 * time.Minute)
	if tr.Len() > 10 {
		t.Errorf("trace exceeded its limit: %d", tr.Len())
	}
}
