package diffusion_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"diffusion"
)

func tracedRun(t *testing.T) (*diffusion.Network, *diffusion.Trace) {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     13,
		Topology: diffusion.LineTopology(4, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	tr := net.NewTrace(0)
	interest, publication := surveillance()
	net.Node(1).Subscribe(interest, nil)
	src := net.Node(4)
	pub := src.Publish(publication)
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
	})
	net.Run(3 * time.Minute)
	return net, tr
}

func TestTraceRecordsAllClasses(t *testing.T) {
	_, tr := tracedRun(t)
	if tr.Len() == 0 {
		t.Fatal("trace empty")
	}
	byClass := tr.CountByClass()
	for _, c := range []diffusion.MessageClass{
		diffusion.ClassInterest,
		diffusion.ClassData,
		diffusion.ClassExploratoryData,
		diffusion.ClassPositiveReinf,
	} {
		if byClass[c] == 0 {
			t.Errorf("no %v events traced", c)
		}
	}
	// Every node processed something.
	byNode := tr.CountByNode()
	for id := uint32(1); id <= 4; id++ {
		if byNode[id] == 0 {
			t.Errorf("node %d has no trace events", id)
		}
	}
}

func TestTraceOriginations(t *testing.T) {
	_, tr := tracedRun(t)
	orig := tr.Originations()
	// The sink originates interests (one per refresh); the source
	// originates data.
	if orig[diffusion.ClassInterest] < 2 {
		t.Errorf("interest originations: %d", orig[diffusion.ClassInterest])
	}
	if orig[diffusion.ClassData]+orig[diffusion.ClassExploratoryData] < 20 {
		t.Errorf("data originations: %v", orig)
	}
	// Originations are a subset of processing events.
	total := 0
	for _, c := range orig {
		total += c
	}
	if total >= tr.Len() {
		t.Error("originations must be fewer than processing events")
	}
}

func TestTraceLatencyProbe(t *testing.T) {
	_, tr := tracedRun(t)
	// Find a data origination at node 4 and its first processing at node
	// 1: latency must be positive and under a second on an idle line.
	for _, e := range tr.Events() {
		if e.Local && e.Node == 4 && e.Class == diffusion.ClassData {
			at, ok := tr.FirstDelivery(e.ID, 1)
			if !ok {
				continue
			}
			lat := at - e.At
			if lat <= 0 || lat > 2*time.Second {
				t.Errorf("implausible 3-hop latency %v", lat)
			}
			return
		}
	}
	t.Error("no traced data origination reached the sink")
}

func TestTraceReports(t *testing.T) {
	_, tr := tracedRun(t)
	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "busiest nodes") {
		t.Errorf("summary:\n%s", buf.String())
	}
	buf.Reset()
	tr.WriteLog(&buf)
	if !strings.Contains(buf.String(), "org") || !strings.Contains(buf.String(), "fwd") {
		t.Error("log should mark originations and forwards")
	}
}

func TestTraceLimit(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     14,
		Topology: diffusion.LineTopology(3, 10),
	})
	tr := net.NewTrace(10)
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "x"),
	}, nil)
	net.Run(5 * time.Minute)
	if tr.Len() > 10 {
		t.Errorf("trace exceeded its limit: %d", tr.Len())
	}
}
