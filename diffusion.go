// Package diffusion is a from-scratch implementation of directed diffusion
// with low-level attribute naming, reproducing Heidemann et al., "Building
// Efficient Wireless Sensor Networks with Low-Level Naming" (SOSP 2001).
//
// The package is a facade over the internal subsystems:
//
//   - attribute-value-operation tuples and the one-way/two-way matching
//     rules (internal/attr),
//   - the diffusion core with gradients, reinforcement and the
//     publish/subscribe Network Routing API (internal/core),
//   - the filter architecture for in-network processing and a library of
//     filters — suppression aggregation, counting aggregation, nested
//     queries, geographic scoping, elections (internal/filters),
//   - micro-diffusion for mote-class devices plus the tier gateway
//     (internal/microdiff),
//   - and a full wireless substrate: a 13 kb/s lossy broadcast radio with
//     asymmetric and intermittent links, a primitive CSMA MAC with 27-byte
//     fragmentation, node topologies including the paper's 14-node ISI
//     testbed, and a deterministic discrete-event scheduler
//     (internal/radio, internal/mac, internal/topo, internal/sim).
//
// Quickstart:
//
//	net := diffusion.NewNetwork(diffusion.NetworkConfig{
//		Seed:     1,
//		Topology: diffusion.TestbedTopology(),
//	})
//	sink := net.Node(28)
//	sink.Subscribe(diffusion.Attributes{
//		diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
//	}, func(m *diffusion.Message) { fmt.Println("got", m.Attrs) })
//	src := net.Node(13)
//	pub := src.Publish(diffusion.Attributes{
//		diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
//	})
//	net.Every(6*time.Second, func() { src.Send(pub, nil) })
//	net.Run(30 * time.Minute) // simulated time; completes in milliseconds
package diffusion

import (
	"diffusion/internal/attr"
	"diffusion/internal/message"
)

// Core naming types, re-exported from the attribute layer.
type (
	// Attribute is one attribute-value-operation tuple.
	Attribute = attr.Attribute
	// Attributes is an attribute set — the unit of naming for interests,
	// data, and filter patterns.
	Attributes = attr.Vec
	// Key identifies an attribute (see RegisterKey).
	Key = attr.Key
	// Op is the attribute operation (IS, EQ, NE, LT, LE, GT, GE, EQAny).
	Op = attr.Op
	// Value is a typed attribute value.
	Value = attr.Value
	// Message is a diffusion message as seen by callbacks and filters.
	Message = message.Message
	// MessageClass distinguishes interests, data, exploratory data and
	// reinforcements.
	MessageClass = message.Class
	// NodeID is a link-layer neighbor identifier.
	NodeID = message.NodeID
)

// Attribute operations (see the paper's section 3.2). IS binds an actual
// value; the others are formals resolved during matching.
const (
	IS    = attr.IS
	EQ    = attr.EQ
	NE    = attr.NE
	LT    = attr.LT
	LE    = attr.LE
	GT    = attr.GT
	GE    = attr.GE
	EQAny = attr.EQAny
)

// Message classes.
const (
	ClassInterest        = message.Interest
	ClassData            = message.Data
	ClassExploratoryData = message.ExploratoryData
	ClassPositiveReinf   = message.PositiveReinforcement
	ClassNegativeReinf   = message.NegativeReinforcement
	ClassInterestValue   = attr.ClassInterest
	ClassDataValue       = attr.ClassData
	BroadcastNodeID      = message.Broadcast
)

// Well-known attribute keys (the paper's pre-defined shared vocabulary).
const (
	KeyClass      = attr.KeyClass
	KeyTask       = attr.KeyTask
	KeyType       = attr.KeyType
	KeyInterval   = attr.KeyInterval
	KeyDuration   = attr.KeyDuration
	KeyX          = attr.KeyX
	KeyY          = attr.KeyY
	KeyLatitude   = attr.KeyLatitude
	KeyLongitude  = attr.KeyLongitude
	KeyInstance   = attr.KeyInstance
	KeyIntensity  = attr.KeyIntensity
	KeyConfidence = attr.KeyConfidence
	KeyTimestamp  = attr.KeyTimestamp
	KeyTarget     = attr.KeyTarget
	KeySubtype    = attr.KeySubtype
	KeySequence   = attr.KeySequence
	KeyPayload    = attr.KeyPayload
	KeyCount      = attr.KeyCount
)

// Attribute constructors.
var (
	// Int32 returns an attribute with an int32 value.
	Int32 = attr.Int32Attr
	// Int64 returns an attribute with an int64 value.
	Int64 = attr.Int64Attr
	// Float32 returns an attribute with a float32 value.
	Float32 = attr.Float32Attr
	// Float64 returns an attribute with a float64 value.
	Float64 = attr.Float64Attr
	// String returns an attribute with a string value.
	String = attr.StringAttr
	// Blob returns an attribute with an opaque binary value.
	Blob = attr.BlobAttr
	// Any returns the wildcard formal "key EQ_ANY".
	Any = attr.Any
)

// RegisterKey allocates (or returns) the key for an application-defined
// attribute name, standing in for the paper's central key authority.
func RegisterKey(name string) Key { return attr.RegisterKey(name) }

// KeyName returns the registered name of a key.
func KeyName(k Key) string { return attr.KeyName(k) }

// Match reports a complete two-way attribute match between two sets, and
// OneWayMatch the one-way match of the paper's Figure 2.
var (
	Match       = attr.Match
	OneWayMatch = attr.OneWayMatch
)

// UnmarshalMessage decodes a diffusion message from its wire encoding.
var UnmarshalMessage = message.Unmarshal

// ParseAttributes parses the paper's textual attribute notation, e.g.
// "type EQ four-legged-animal-search, interval IS 20, x GE -100".
var ParseAttributes = attr.ParseVec

// MustParseAttributes is ParseAttributes for trusted literals; it panics
// on malformed input.
var MustParseAttributes = attr.MustParseVec
