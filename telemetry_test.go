package diffusion_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"diffusion"
)

// telemetryRun builds the standard line network with a running flow, like
// faultRun, for telemetry observations.
func telemetryRun(seed int64, hops int) *diffusion.Network {
	net, _, _ := faultRun(seed, hops)
	return net
}

func TestMetricsSnapshotCoversAllLayers(t *testing.T) {
	net := telemetryRun(61, 3)
	net.Run(3 * time.Minute)
	snap := net.MetricsSnapshot()
	if snap.At != net.Now() {
		t.Errorf("snapshot stamped %v, clock says %v", snap.At, net.Now())
	}
	// Every layer must contribute: radio, MAC, core, energy per node, plus
	// the shared channel scope.
	for _, key := range []string{
		"radio.frames_sent", "radio.bytes_sent",
		"mac.messages_sent", "mac.fragments_sent",
		"core.sent.interest", "core.received.data", "core.gradients_created",
		"energy.total_j",
	} {
		if snap.Total(key) <= 0 {
			t.Errorf("network total %q = %v, want > 0", key, snap.Total(key))
		}
	}
	ch := snap.Scope("channel")
	if ch == nil || ch["radio.channel.frames_sent"] <= 0 {
		t.Errorf("channel scope missing frame counts: %v", ch)
	}
	relay := snap.Scope("node-2")
	if relay == nil || relay["core.interests_seen"] <= 0 {
		t.Errorf("node-2 scope missing core counters: %v", relay)
	}
	var buf bytes.Buffer
	snap.Write(&buf)
	if !strings.Contains(buf.String(), "metrics @") {
		t.Errorf("snapshot render:\n%s", buf.String())
	}
}

func TestMetricsFreezeWhileDetachedResumeAfterRestart(t *testing.T) {
	net := telemetryRun(62, 3)
	net.Run(2 * time.Minute)
	net.CrashNode(2)
	down := net.MetricsSnapshot().Scope("node-2")

	net.Run(3 * time.Minute)
	still := net.MetricsSnapshot().Scope("node-2")
	for _, key := range []string{"radio.frames_sent", "mac.messages_sent", "core.sent.interest"} {
		if still[key] != down[key] {
			t.Errorf("%s moved while node 2 was down: %v -> %v", key, down[key], still[key])
		}
	}

	net.RebootNode(2)
	net.Run(3 * time.Minute)
	after := net.MetricsSnapshot().Scope("node-2")
	for _, key := range []string{"radio.frames_sent", "mac.messages_sent"} {
		if after[key] <= still[key] {
			t.Errorf("%s did not resume after reboot: %v -> %v", key, still[key], after[key])
		}
	}
}

func TestFlightRecorderDumpsOnFault(t *testing.T) {
	net := telemetryRun(63, 3)
	var dump bytes.Buffer
	net.SetFlightDump(&dump)
	net.Run(2 * time.Minute)
	if net.FlightRecorder(2).Total() == 0 {
		t.Fatal("flight recorder saw no traffic before the fault")
	}
	net.CrashNode(2)
	out := dump.String()
	for _, want := range []string{"flight dump on fault", "--- node 2 ---", "node-down"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault dump missing %q:\n%s", want, out)
		}
	}
	// The ring itself carries the fault record too.
	recs := net.FlightRecorder(2).Records()
	last := recs[len(recs)-1]
	if last.Verb.String() != "fault" {
		t.Errorf("last flight record is %v, want the fault", last)
	}

	// DumpFlightRecorders renders every node.
	var all bytes.Buffer
	net.DumpFlightRecorders(&all)
	for _, want := range []string{"--- node 1 ---", "--- node 2 ---", "--- node 3 ---"} {
		if !strings.Contains(all.String(), want) {
			t.Errorf("full dump missing %q", want)
		}
	}
}

func TestFlightDumpDisabledByDefault(t *testing.T) {
	net := telemetryRun(64, 3)
	net.Run(time.Minute)
	net.CrashNode(2) // no sink set: must not panic, ring still records
	recs := net.FlightRecorder(2).Records()
	if len(recs) == 0 || recs[len(recs)-1].Verb.String() != "fault" {
		t.Error("flight ring did not record the fault without a dump sink")
	}
}

func TestTraceDropAccounting(t *testing.T) {
	net := telemetryRun(65, 3)
	tr := net.NewTrace(10)
	net.Run(5 * time.Minute)
	if tr.Len() != 10 {
		t.Fatalf("trace holds %d events at limit 10", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("a busy 5-minute run must overflow a 10-event trace")
	}
	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "WARNING") || !strings.Contains(buf.String(), "dropped at the trace limit") {
		t.Errorf("summary does not warn about drops:\n%s", buf.String())
	}
	// The exported header carries the drop counts.
	if h := tr.Header(); h.DroppedEvents != tr.Dropped() {
		t.Errorf("header dropped_events=%d, Dropped()=%d", h.DroppedEvents, tr.Dropped())
	}
}

func TestTraceFaultLimitIndependent(t *testing.T) {
	net := telemetryRun(66, 3)
	tr := net.NewTrace(0)
	tr.SetFaultLimit(2)
	net.Run(time.Minute)
	net.SetLinkDown(1, 2, true)
	net.SetLinkDown(1, 2, false)
	net.SetLinkDown(2, 3, true) // third fault: over the bound
	if len(tr.Faults()) != 2 {
		t.Errorf("trace holds %d faults at fault limit 2", len(tr.Faults()))
	}
	if tr.DroppedFaults() != 1 {
		t.Errorf("DroppedFaults() = %d, want 1", tr.DroppedFaults())
	}
	// Message events keep flowing: the bounds are independent.
	before := tr.Len()
	net.Run(time.Minute)
	if tr.Len() <= before {
		t.Error("message events stopped when the fault bound filled")
	}
	var buf bytes.Buffer
	tr.Summary(&buf)
	if !strings.Contains(buf.String(), "1 faults dropped") {
		t.Errorf("summary does not warn about dropped faults:\n%s", buf.String())
	}
}

func TestTraceNoWarningUnderLimit(t *testing.T) {
	net := telemetryRun(67, 3)
	tr := net.NewTrace(0)
	net.Run(time.Minute)
	if tr.Dropped() != 0 || tr.DroppedFaults() != 0 {
		t.Fatalf("unexpected drops: %d events, %d faults", tr.Dropped(), tr.DroppedFaults())
	}
	var buf bytes.Buffer
	tr.Summary(&buf)
	if strings.Contains(buf.String(), "WARNING") {
		t.Errorf("summary warns without drops:\n%s", buf.String())
	}
}

func TestTraceHeaderDescribesRun(t *testing.T) {
	net := telemetryRun(68, 3)
	tr := net.NewTrace(0)
	inj := net.NewFaultInjector()
	inj.CrashFor(30*time.Second, 2, 20*time.Second)
	tr.SetFaultScript(inj.Script())
	net.Run(2 * time.Minute)

	h := tr.Header()
	if h.Seed != 68 || h.Nodes != 3 {
		t.Errorf("header seed=%d nodes=%d", h.Seed, h.Nodes)
	}
	if h.InterestInterval == "" || h.GradientLifetime == "" || h.TTL == 0 {
		t.Errorf("header missing protocol rates: %+v", h)
	}
	if len(h.FaultScript) != 2 ||
		!strings.Contains(h.FaultScript[0], "crash node 2") ||
		!strings.Contains(h.FaultScript[1], "reboot node 2") {
		t.Errorf("fault script: %v", h.FaultScript)
	}

	// The exported JSONL round-trips the header.
	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "crash node 2") {
		t.Error("JSONL header line does not carry the fault script")
	}
}

func TestMetricsAccessorPanicsOnUnknownNode(t *testing.T) {
	net := telemetryRun(69, 3)
	defer func() {
		if recover() == nil {
			t.Error("Metrics(99) did not panic")
		}
	}()
	net.Metrics(99)
}
