package diffusion

import (
	"fmt"
	"io"
	"sort"
	"time"

	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// Trace is the network-wide analysis tool the paper asks for (section 7:
// "we were repeatedly challenged by the difficulty in understanding what
// was going on in a network of dozens of physically distributed nodes ...
// tools are needed to ... permit more flexible logging"). It installs a
// pass-through tap on every node and records every message each node
// processes, with summaries by class, node, and flow direction. Because
// the simulation is deterministic, a trace is a complete, replayable
// account of a run.
type Trace struct {
	net *Network
	// Recording is per node: each node's filter appends to its own buffer
	// on its own clock, so under the sharded kernel nodes on different
	// shards record concurrently without sharing state, and the recorded
	// timestamps are exact event times at any shard count. Events reads
	// the buffers merged into one canonical timeline.
	bufs   map[uint32]*nodeTraceBuf
	merged []TraceEvent // cached merge; rebuilt when stale
	faults []FaultEvent
	// limit bounds message events, divided evenly across the nodes (the
	// per-node bound is what keeps recording shard-local); faults are far
	// rarer and get their own bound so a chatty run cannot starve the
	// fault record (or vice versa).
	limit      int
	faultLimit int
	// droppedFaults counts fault events lost to the fault bound; message
	// drops are counted per node. Dropping truncates each node's view of
	// the *end* of the run, so summaries must warn when non-zero.
	droppedFaults int
	header        TraceRunInfo
	faultScript   []string
}

// nodeTraceBuf is one node's recording buffer; only that node's event
// context touches it during a run.
type nodeTraceBuf struct {
	events  []TraceEvent
	limit   int
	dropped int
}

// TraceEvent is one message processing record at one node.
type TraceEvent struct {
	At    time.Duration
	Node  uint32
	Class MessageClass
	// ID identifies the message origination.
	ID message.ID
	// From is the neighbor the message arrived from (equal to Node when
	// originated locally).
	From uint32
	// Local marks messages originated at the recording node.
	Local bool
	// Hops is the message's hop count when observed.
	Hops uint8
}

// defaultFaultLimit bounds recorded fault events; even brutal churn runs
// inject orders of magnitude fewer faults than messages.
const defaultFaultLimit = 100_000

// NewTrace installs the trace across every full-diffusion node. limit
// bounds message-event memory (0 means one million events); once reached,
// new events are dropped — truncating the end of the run — and counted in
// Dropped, which Summary warns about. Fault events have their own bound.
func (net *Network) NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = 1_000_000
	}
	t := &Trace{
		net:        net,
		bufs:       map[uint32]*nodeTraceBuf{},
		limit:      limit,
		faultLimit: defaultFaultLimit,
		header:     net.RunInfo(),
	}
	traced := 0
	for _, id := range net.IDs() {
		if _, ok := net.nodes[id]; ok {
			traced++ // mote tiers are not traced
		}
	}
	perNode, extra := limit, 0
	if traced > 0 {
		perNode = limit / traced
		// The first limit%traced nodes (topology order) take one more, so
		// the per-node bounds sum exactly to the requested limit.
		extra = limit % traced
		if perNode < 1 {
			perNode, extra = 1, 0
		}
	}
	for _, id := range net.IDs() {
		n, ok := net.nodes[id]
		if !ok {
			continue
		}
		id := id
		node := n
		buf := &nodeTraceBuf{limit: perNode}
		if extra > 0 {
			buf.limit++
			extra--
		}
		t.bufs[id] = buf
		clk := net.NodeEnv(id)
		node.AddFilter(nil, 30100, func(m *Message, h FilterHandle) {
			if len(buf.events) < buf.limit {
				buf.events = append(buf.events, TraceEvent{
					At:    clk.Now(),
					Node:  id,
					Class: m.Class,
					ID:    m.ID,
					From:  uint32(m.PrevHop),
					Local: uint32(m.PrevHop) == id,
					Hops:  m.HopCount,
				})
			} else {
				buf.dropped++
			}
			node.SendMessageToNext(m, h)
		})
	}
	// Fault events (node-down/up, link-down/up) are part of the run's
	// story: record them so traces from churn runs are self-describing.
	net.OnFault(func(ev FaultEvent) {
		if len(t.faults) < t.faultLimit {
			t.faults = append(t.faults, ev)
		} else {
			t.droppedFaults++
		}
	})
	return t
}

// Events returns the recorded events merged across nodes into one
// canonical timeline — ordered by timestamp, ties broken by topology
// position — independent of the kernel's shard layout (shared slice; do
// not mutate).
func (t *Trace) Events() []TraceEvent {
	total := 0
	for _, b := range t.bufs {
		total += len(b.events)
	}
	if len(t.merged) == total {
		return t.merged
	}
	merged := make([]TraceEvent, 0, total)
	for _, id := range t.net.IDs() {
		if b, ok := t.bufs[id]; ok {
			merged = append(merged, b.events...)
		}
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].At < merged[j].At })
	t.merged = merged
	return t.merged
}

// Faults returns the fault events recorded during the run (shared slice;
// do not mutate).
func (t *Trace) Faults() []FaultEvent { return t.faults }

// Dropped returns the number of message events lost to the per-node trace
// limits. Non-zero means the tail of the run is missing from Events.
func (t *Trace) Dropped() int {
	n := 0
	for _, b := range t.bufs {
		n += b.dropped
	}
	return n
}

// DroppedFaults returns the number of fault events lost to the fault
// bound.
func (t *Trace) DroppedFaults() int { return t.droppedFaults }

// SetFaultLimit overrides the fault-event bound (non-positive restores the
// default). Fault events beyond it are dropped and counted in
// DroppedFaults.
func (t *Trace) SetFaultLimit(n int) {
	if n <= 0 {
		n = defaultFaultLimit
	}
	t.faultLimit = n
}

// SetFaultScript attaches a human-readable description of the run's
// scheduled fault scenario; it is exported in the trace header so faulted
// traces are self-describing.
func (t *Trace) SetFaultScript(lines []string) { t.faultScript = lines }

// Repairs counts the node-down faults after which positive-reinforcement
// traffic was observed again before the next node-down — the visible
// signature of the paper's repair machinery re-converging onto a working
// path after a failure.
func (t *Trace) Repairs() int {
	repairs := 0
	for i, f := range t.faults {
		if f.Kind != FaultNodeDown {
			continue
		}
		// The window closes at the next node-down (or the end of the run).
		end := time.Duration(1<<62 - 1)
		for _, g := range t.faults[i+1:] {
			if g.Kind == FaultNodeDown {
				end = g.At
				break
			}
		}
		for _, e := range t.Events() {
			if e.Class == ClassPositiveReinf && e.At > f.At && e.At <= end {
				repairs++
				break
			}
		}
	}
	return repairs
}

// nodeDowns counts node-down faults.
func (t *Trace) nodeDowns() int {
	n := 0
	for _, f := range t.faults {
		if f.Kind == FaultNodeDown {
			n++
		}
	}
	return n
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events()) }

// CountByClass tallies processing events per message class.
func (t *Trace) CountByClass() map[MessageClass]int {
	out := map[MessageClass]int{}
	for _, e := range t.Events() {
		out[e.Class]++
	}
	return out
}

// CountByNode tallies processing events per node.
func (t *Trace) CountByNode() map[uint32]int {
	out := map[uint32]int{}
	for _, e := range t.Events() {
		out[e.Node]++
	}
	return out
}

// Originations returns the distinct message originations observed, per
// class.
func (t *Trace) Originations() map[MessageClass]int {
	seen := map[message.ID]bool{}
	out := map[MessageClass]int{}
	for _, e := range t.Events() {
		if e.Local && !seen[e.ID] {
			seen[e.ID] = true
			out[e.Class]++
		}
	}
	return out
}

// FirstDelivery returns when a given message origination was first
// processed at the given node, or ok=false (per-message latency probing).
func (t *Trace) FirstDelivery(id message.ID, node uint32) (time.Duration, bool) {
	for _, e := range t.Events() {
		if e.ID == id && e.Node == node {
			return e.At, true
		}
	}
	return 0, false
}

// Summary writes a human-readable report: totals by class, then the
// busiest nodes — the at-a-glance view of "what was going on in the
// network".
func (t *Trace) Summary(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over %v\n", len(t.Events()), t.span())
	byClass := t.CountByClass()
	classes := make([]MessageClass, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(w, "  %-24s %6d\n", c, byClass[c])
	}
	type load struct {
		node  uint32
		count int
	}
	var loads []load
	for n, c := range t.CountByNode() {
		loads = append(loads, load{n, c})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].count != loads[j].count {
			return loads[i].count > loads[j].count
		}
		return loads[i].node < loads[j].node
	})
	fmt.Fprintln(w, "busiest nodes:")
	for i, l := range loads {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "  node %-4d %6d events\n", l.node, l.count)
	}
	if len(t.faults) > 0 {
		counts := map[FaultKind]int{}
		for _, f := range t.faults {
			counts[f.Kind]++
		}
		fmt.Fprintf(w, "faults: %d node-down, %d node-up, %d link-down, %d link-up; repairs: %d/%d\n",
			counts[FaultNodeDown], counts[FaultNodeUp],
			counts[FaultLinkDown], counts[FaultLinkUp],
			t.Repairs(), t.nodeDowns())
	}
	if t.Dropped() > 0 || t.droppedFaults > 0 {
		fmt.Fprintf(w, "WARNING: %d events and %d faults dropped at the trace limit; the end of the run is missing\n",
			t.Dropped(), t.droppedFaults)
	}
}

// WriteLog streams every event as one line, for offline analysis. Fault
// events interleave with message events in time order, so an outage reads
// in place in the log.
func (t *Trace) WriteLog(w io.Writer) {
	fi := 0
	emitFaultsThrough := func(at time.Duration) {
		for fi < len(t.faults) && t.faults[fi].At <= at {
			f := t.faults[fi]
			if f.Kind == FaultLinkDown || f.Kind == FaultLinkUp {
				fmt.Fprintf(w, "%12v fault %v %d<->%d\n", f.At, f.Kind, f.Node, f.Peer)
			} else {
				fmt.Fprintf(w, "%12v fault %v node=%d\n", f.At, f.Kind, f.Node)
			}
			fi++
		}
	}
	for _, e := range t.Events() {
		emitFaultsThrough(e.At)
		origin := "fwd"
		if e.Local {
			origin = "org"
		}
		fmt.Fprintf(w, "%12v node=%d %s %s id=%v hops=%d\n",
			e.At, e.Node, origin, e.Class, e.ID, e.Hops)
	}
	emitFaultsThrough(time.Duration(1<<62 - 1))
}

func (t *Trace) span() time.Duration {
	ev := t.Events()
	if len(ev) == 0 {
		return 0
	}
	return ev[len(ev)-1].At - ev[0].At
}

// Header returns the trace's self-describing run header: the network
// configuration captured at NewTrace, the fault script (SetFaultScript),
// and drop accounting.
func (t *Trace) Header() TraceRunInfo {
	h := t.header
	h.FaultScript = t.faultScript
	h.DroppedEvents = t.Dropped()
	h.DroppedFaults = t.droppedFaults
	return h
}

// Records converts the trace into structured records: message events
// (layer "core", verb "org"/"fwd"), fault events (layer "fault", the kind
// as verb), and — when NetworkConfig.TraceSampling is on — flight-path
// spans (non-zero flow field, layers core/mac/custody), merged in time
// order. The merge is deterministic at any shard count.
func (t *Trace) Records() []TraceRecord {
	events := t.Events()
	out := make([]TraceRecord, 0, len(events)+len(t.faults))
	fi := 0
	emitFaultsThrough := func(at time.Duration) {
		for fi < len(t.faults) && t.faults[fi].At <= at {
			f := t.faults[fi]
			out = append(out, TraceRecord{
				US: f.At.Microseconds(), Node: f.Node, Layer: "fault",
				Verb: f.Kind.String(), Peer: f.Peer,
			})
			fi++
		}
	}
	for _, e := range events {
		emitFaultsThrough(e.At)
		verb := "fwd"
		if e.Local {
			verb = "org"
		}
		out = append(out, TraceRecord{
			US: e.At.Microseconds(), Node: e.Node, Layer: "core", Verb: verb,
			Class: e.Class.String(), ID: e.ID.String(), From: e.From, Hops: int(e.Hops),
		})
	}
	emitFaultsThrough(time.Duration(1<<62 - 1))
	if spans := t.net.SpanRecords(); len(spans) > 0 {
		out = append(out, spans...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].US < out[j].US })
	}
	return out
}

// ExportJSONL writes the trace — header line plus one record per line —
// for cmd/difftrace and offline tooling.
func (t *Trace) ExportJSONL(w io.Writer) error {
	return telemetry.WriteJSONL(w, t.Header(), t.Records())
}

// ExportChromeTrace writes the trace in Chrome trace_event format: open
// it in chrome://tracing or Perfetto to see one lane per node.
func (t *Trace) ExportChromeTrace(w io.Writer) error {
	return telemetry.WriteChromeTrace(w, t.Header(), t.Records())
}
