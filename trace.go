package diffusion

import (
	"fmt"
	"io"
	"sort"
	"time"

	"diffusion/internal/message"
)

// Trace is the network-wide analysis tool the paper asks for (section 7:
// "we were repeatedly challenged by the difficulty in understanding what
// was going on in a network of dozens of physically distributed nodes ...
// tools are needed to ... permit more flexible logging"). It installs a
// pass-through tap on every node and records every message each node
// processes, with summaries by class, node, and flow direction. Because
// the simulation is deterministic, a trace is a complete, replayable
// account of a run.
type Trace struct {
	net    *Network
	events []TraceEvent
	limit  int
}

// TraceEvent is one message processing record at one node.
type TraceEvent struct {
	At    time.Duration
	Node  uint32
	Class MessageClass
	// ID identifies the message origination.
	ID message.ID
	// Local marks messages originated at the recording node.
	Local bool
	// Hops is the message's hop count when observed.
	Hops uint8
}

// NewTrace installs the trace across every full-diffusion node. limit
// bounds memory (0 means one million events); when reached, older events
// are kept and new ones dropped.
func (net *Network) NewTrace(limit int) *Trace {
	if limit <= 0 {
		limit = 1_000_000
	}
	t := &Trace{net: net, limit: limit}
	for _, id := range net.IDs() {
		n, ok := net.nodes[id]
		if !ok {
			continue // mote tiers are not traced
		}
		id := id
		node := n
		node.AddFilter(nil, 30100, func(m *Message, h FilterHandle) {
			if len(t.events) < t.limit {
				t.events = append(t.events, TraceEvent{
					At:    net.Now(),
					Node:  id,
					Class: m.Class,
					ID:    m.ID,
					Local: uint32(m.PrevHop) == id,
					Hops:  m.HopCount,
				})
			}
			node.SendMessageToNext(m, h)
		})
	}
	return t
}

// Events returns the recorded events (shared slice; do not mutate).
func (t *Trace) Events() []TraceEvent { return t.events }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.events) }

// CountByClass tallies processing events per message class.
func (t *Trace) CountByClass() map[MessageClass]int {
	out := map[MessageClass]int{}
	for _, e := range t.events {
		out[e.Class]++
	}
	return out
}

// CountByNode tallies processing events per node.
func (t *Trace) CountByNode() map[uint32]int {
	out := map[uint32]int{}
	for _, e := range t.events {
		out[e.Node]++
	}
	return out
}

// Originations returns the distinct message originations observed, per
// class.
func (t *Trace) Originations() map[MessageClass]int {
	seen := map[message.ID]bool{}
	out := map[MessageClass]int{}
	for _, e := range t.events {
		if e.Local && !seen[e.ID] {
			seen[e.ID] = true
			out[e.Class]++
		}
	}
	return out
}

// FirstDelivery returns when a given message origination was first
// processed at the given node, or ok=false (per-message latency probing).
func (t *Trace) FirstDelivery(id message.ID, node uint32) (time.Duration, bool) {
	for _, e := range t.events {
		if e.ID == id && e.Node == node {
			return e.At, true
		}
	}
	return 0, false
}

// Summary writes a human-readable report: totals by class, then the
// busiest nodes — the at-a-glance view of "what was going on in the
// network".
func (t *Trace) Summary(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events over %v\n", len(t.events), t.span())
	byClass := t.CountByClass()
	classes := make([]MessageClass, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		fmt.Fprintf(w, "  %-24s %6d\n", c, byClass[c])
	}
	type load struct {
		node  uint32
		count int
	}
	var loads []load
	for n, c := range t.CountByNode() {
		loads = append(loads, load{n, c})
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].count != loads[j].count {
			return loads[i].count > loads[j].count
		}
		return loads[i].node < loads[j].node
	})
	fmt.Fprintln(w, "busiest nodes:")
	for i, l := range loads {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "  node %-4d %6d events\n", l.node, l.count)
	}
}

// WriteLog streams every event as one line, for offline analysis.
func (t *Trace) WriteLog(w io.Writer) {
	for _, e := range t.events {
		origin := "fwd"
		if e.Local {
			origin = "org"
		}
		fmt.Fprintf(w, "%12v node=%d %s %s id=%v hops=%d\n",
			e.At, e.Node, origin, e.Class, e.ID, e.Hops)
	}
}

func (t *Trace) span() time.Duration {
	if len(t.events) == 0 {
		return 0
	}
	return t.events[len(t.events)-1].At - t.events[0].At
}
