package diffusion_test

import (
	"testing"
	"time"

	"diffusion"
)

func surveillance() (interest, publication diffusion.Attributes) {
	interest = diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
		diffusion.Int32(diffusion.KeyInterval, diffusion.IS, 6000),
	}
	publication = diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
	}
	return
}

// TestEndToEndOverTestbed runs the full stack — diffusion core, CSMA MAC
// with 27-byte fragments, lossy asymmetric radio — on the paper's 14-node
// testbed topology: a sink at node 28 and a source at node 13, four to
// five hops apart.
func TestEndToEndOverTestbed(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     42,
		Topology: diffusion.TestbedTopology(),
	})
	interest, publication := surveillance()

	var got []int32
	sink := net.Node(diffusion.TestbedSink)
	sink.Subscribe(interest, func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			got = append(got, a.Val.Int32())
		}
	})

	src := net.Node(13)
	pub := src.Publish(publication)
	seq := int32(0)
	net.Every(6*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 50)),
		})
	})
	net.Run(10 * time.Minute)

	if seq < 90 {
		t.Fatalf("source produced only %d events", seq)
	}
	// The paper observed 55-80% delivery under load; a single source on
	// the lossy testbed should do at least moderately well.
	rate := float64(len(got)) / float64(seq)
	if rate < 0.3 {
		t.Errorf("delivery rate %.0f%% (%d/%d) too low for one source", 100*rate, len(got), seq)
	}
	if net.TotalDiffusionBytes() == 0 {
		t.Error("no diffusion bytes accounted")
	}
	// Radio-level collisions should exist (hidden terminals are endemic
	// in the testbed).
	if net.ChannelStats().FramesSent == 0 {
		t.Error("radio never transmitted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) (int, int) {
		net := diffusion.NewNetwork(diffusion.NetworkConfig{
			Seed:     seed,
			Topology: diffusion.TestbedTopology(),
		})
		interest, publication := surveillance()
		delivered := 0
		net.Node(diffusion.TestbedSink).Subscribe(interest, func(*diffusion.Message) { delivered++ })
		src := net.Node(22)
		pub := src.Publish(publication)
		seq := int32(0)
		net.Every(6*time.Second, func() {
			seq++
			src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
		})
		net.Run(5 * time.Minute)
		return delivered, net.TotalDiffusionBytes()
	}
	d1, b1 := run(7)
	d2, b2 := run(7)
	if d1 != d2 || b1 != b2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", d1, b1, d2, b2)
	}
	d3, b3 := run(8)
	if d1 == d3 && b1 == b3 {
		t.Log("different seeds coincidentally equal (unlikely but legal)")
	}
}

func TestNodePanicsOnUnknownID(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     1,
		Topology: diffusion.LineTopology(3, 10),
	})
	defer func() {
		if recover() == nil {
			t.Error("unknown node ID must panic")
		}
	}()
	net.Node(99)
}

func TestNetworkAccessors(t *testing.T) {
	tp := diffusion.GridTopology(3, 3, 10)
	net := diffusion.NewNetwork(diffusion.NetworkConfig{Seed: 1, Topology: tp})
	if len(net.Nodes()) != 9 || len(net.IDs()) != 9 {
		t.Error("node accounting")
	}
	if net.Now() != 0 {
		t.Error("fresh network at time zero")
	}
	net.Run(time.Second)
	if net.Now() != time.Second {
		t.Errorf("Run should advance to 1s, at %v", net.Now())
	}
	n := net.Node(1)
	if n.MAC.ID() != 1 {
		t.Error("MAC identity")
	}
	if n.RadioStats().FramesSent != 0 {
		t.Error("idle node sent frames")
	}
	b := n.Energy(diffusion.PaperEnergyRatios(), time.Second, 1.0)
	if b.Listen <= 0 {
		t.Error("idle node should accrue listen energy")
	}
}

// TestFourSourcesCongestTheNetwork runs the Figure 8 load point (four
// sources, one event per 6 s) end to end: the network congests but the
// sink still sees a substantial share of distinct events, and the medium
// records collisions from hidden terminals.
func TestFourSourcesCongestTheNetwork(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     5,
		Topology: diffusion.TestbedTopology(),
	})
	interest, publication := surveillance()
	events := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(interest, func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			events[a.Val.Int32()] = true
		}
	})
	srcs := diffusion.TestbedSources()
	nodes := make([]*diffusion.Node, len(srcs))
	pubs := make([]diffusion.PublicationHandle, len(srcs))
	for i, id := range srcs {
		nodes[i] = net.Node(id)
		pubs[i] = nodes[i].Publish(publication)
	}
	seq := int32(0)
	net.Every(6*time.Second, func() {
		seq++
		for i := range srcs {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 50)),
			})
		}
	})
	net.Run(10 * time.Minute)

	if seq < 90 {
		t.Fatalf("only %d event rounds", seq)
	}
	rate := float64(len(events)) / float64(seq)
	if rate < 0.25 {
		t.Errorf("distinct-event delivery %.0f%% too low", 100*rate)
	}
	ch := net.ChannelStats()
	if ch.FramesCollided == 0 {
		t.Error("four-source load should collide at hidden terminals")
	}
}

func TestRunRealtimePacing(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     31,
		Topology: diffusion.LineTopology(2, 10),
	})
	fired := 0
	net.Every(50*time.Millisecond, func() { fired++ })
	// 400ms of virtual time at 100x: should take ~4ms of wall time but
	// still fire all 8 ticks; generous bounds keep CI-stable.
	start := time.Now()
	net.RunRealtime(400*time.Millisecond, 100)
	elapsed := time.Since(start)
	if fired != 8 {
		t.Errorf("fired %d ticks, want 8", fired)
	}
	if net.Now() != 400*time.Millisecond {
		t.Errorf("virtual clock at %v", net.Now())
	}
	if elapsed > 2*time.Second {
		t.Errorf("pacing too slow: %v", elapsed)
	}
	// Zero speed degrades to plain Run.
	net.RunRealtime(100*time.Millisecond, 0)
	if net.Now() != 500*time.Millisecond {
		t.Errorf("virtual clock at %v after speed-0 run", net.Now())
	}
}
