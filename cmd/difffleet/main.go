// Command difffleet orchestrates a many-node diffusion fleet on one
// host: it builds (or takes) a diffnode binary, boots N processes on
// ephemeral loopback ports — one seed started with -discover, everyone
// else pointed at it with -seed — waits for the membership layer to
// converge by walking GET /neighbors from the seed, drives a
// publish→subscribe event stream across the mesh, optionally SIGKILLs
// the sink's busiest relay to prove the fleet routes around the loss,
// and tears everything down with SIGTERM.
//
// Usage:
//
//	difffleet [-n 100] [-events 20] [-chaos] [-bin path/to/diffnode]
//	difffleet [-n 100] -campaign campaign.json
//
// The run's verdict is printed as one JSON report on stdout:
// convergence time, announce overhead, events delivered, recovery time
// after the relay kill, and clean-exit count. Narration goes to stderr.
//
// With -campaign, difffleet instead executes the scripted chaos
// campaign from the given JSON file (see DESIGN.md §10) and prints a
// campaign verdict. Exit codes then distinguish failure classes:
// 0 — every phase and invariant held; 1 — usage or infrastructure
// error (no verdict produced); 2 — the campaign ran and found a
// violation (lost or duplicated events, census failed to re-converge,
// demotion churn over bound).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var cfg fleetConfig
	var campaignPath string
	flag.IntVar(&cfg.N, "n", 100, "fleet size, including the seed")
	flag.StringVar(&cfg.Bin, "bin", "", "prebuilt diffnode binary (default: go build one)")
	flag.StringVar(&cfg.Dir, "dir", "", "scratch directory (default: a temp dir)")
	flag.IntVar(&cfg.Events, "events", 20, "events to publish across the mesh")
	flag.BoolVar(&cfg.Chaos, "chaos", false, "SIGKILL the sink's busiest relay mid-stream and measure recovery")
	flag.BoolVar(&cfg.NodeLogs, "node-logs", false, "write per-node logs into the scratch directory")
	flag.IntVar(&cfg.DegreeCap, "degree-cap", 0, "per-node neighbor cap (0: 8)")
	flag.DurationVar(&cfg.Stagger, "stagger", 0, "delay between joiner boots (0: 15ms)")
	flag.DurationVar(&cfg.ConvergeTimeout, "converge-timeout", 0, "membership convergence deadline (0: 3m)")
	flag.StringVar(&campaignPath, "campaign", "", "chaos campaign file (JSON); run it instead of the standard sweep")
	flag.Parse()

	cleanup := func() {}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "difffleet-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "difffleet:", err)
			os.Exit(1)
		}
		if !cfg.NodeLogs {
			cleanup = func() { os.RemoveAll(dir) }
		} else {
			fmt.Fprintf(os.Stderr, "difffleet: logs in %s\n", dir)
		}
		cfg.Dir = dir
	}
	cfg.Logw = os.Stderr

	if campaignPath != "" {
		raw, err := os.ReadFile(campaignPath)
		if err != nil {
			cleanup()
			fmt.Fprintln(os.Stderr, "difffleet:", err)
			os.Exit(exitInfra)
		}
		camp, err := parseCampaign(raw)
		if err != nil {
			cleanup()
			fmt.Fprintln(os.Stderr, "difffleet:", err)
			os.Exit(exitInfra)
		}
		start := time.Now()
		v, err := runCampaign(cfg, camp)
		cleanup()
		if err != nil {
			fmt.Fprintln(os.Stderr, "difffleet:", err)
		}
		if v != nil {
			fmt.Fprintf(os.Stderr, "difffleet: campaign finished in %v ok=%v\n",
				time.Since(start).Round(time.Millisecond), v.OK)
			out, _ := json.MarshalIndent(v, "", "  ")
			fmt.Println(string(out))
		}
		os.Exit(exitCode(v, err))
	}

	start := time.Now()
	rep, err := runFleet(cfg)
	cleanup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "difffleet: run finished in %v\n", time.Since(start).Round(time.Millisecond))
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
}
