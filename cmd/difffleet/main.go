// Command difffleet orchestrates a many-node diffusion fleet on one
// host: it builds (or takes) a diffnode binary, boots N processes on
// ephemeral loopback ports — one seed started with -discover, everyone
// else pointed at it with -seed — waits for the membership layer to
// converge by walking GET /neighbors from the seed, drives a
// publish→subscribe event stream across the mesh, optionally SIGKILLs
// the sink's busiest relay to prove the fleet routes around the loss,
// and tears everything down with SIGTERM.
//
// Usage:
//
//	difffleet [-n 100] [-events 20] [-chaos] [-bin path/to/diffnode]
//
// The run's verdict is printed as one JSON report on stdout:
// convergence time, announce overhead, events delivered, recovery time
// after the relay kill, and clean-exit count. Narration goes to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	var cfg fleetConfig
	flag.IntVar(&cfg.N, "n", 100, "fleet size, including the seed")
	flag.StringVar(&cfg.Bin, "bin", "", "prebuilt diffnode binary (default: go build one)")
	flag.StringVar(&cfg.Dir, "dir", "", "scratch directory (default: a temp dir)")
	flag.IntVar(&cfg.Events, "events", 20, "events to publish across the mesh")
	flag.BoolVar(&cfg.Chaos, "chaos", false, "SIGKILL the sink's busiest relay mid-stream and measure recovery")
	flag.BoolVar(&cfg.NodeLogs, "node-logs", false, "write per-node logs into the scratch directory")
	flag.IntVar(&cfg.DegreeCap, "degree-cap", 0, "per-node neighbor cap (0: 8)")
	flag.DurationVar(&cfg.Stagger, "stagger", 0, "delay between joiner boots (0: 15ms)")
	flag.DurationVar(&cfg.ConvergeTimeout, "converge-timeout", 0, "membership convergence deadline (0: 3m)")
	flag.Parse()

	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "difffleet-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "difffleet:", err)
			os.Exit(1)
		}
		if !cfg.NodeLogs {
			defer os.RemoveAll(dir)
		} else {
			fmt.Fprintf(os.Stderr, "difffleet: logs in %s\n", dir)
		}
		cfg.Dir = dir
	}
	cfg.Logw = os.Stderr

	start := time.Now()
	rep, err := runFleet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "difffleet: run finished in %v\n", time.Since(start).Round(time.Millisecond))
	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
}
