package main

import (
	"os"
	"testing"
	"time"
)

// TestFleetSmallConvergence is the everyday-CI version of the fleet
// experiment: 10 processes from a single seed, full convergence, all
// events delivered, relay killed, clean teardown.
func TestFleetSmallConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fleet test skipped in -short mode")
	}
	runFleetTest(t, fleetConfig{
		N:               10,
		Dir:             t.TempDir(),
		Events:          20,
		Chaos:           true,
		NodeLogs:        true,
		ConvergeTimeout: time.Minute,
	})
}

// TestFleetConvergence is the 100-node acceptance run, gated behind
// DIFFUSION_FLEET=1: it boots a hundred diffnode processes from one
// seed and proves convergence, 20/20 delivery, and recovery from a
// SIGKILL'd relay at scale.
func TestFleetConvergence(t *testing.T) {
	if os.Getenv("DIFFUSION_FLEET") != "1" {
		t.Skip("100-node fleet test skipped (set DIFFUSION_FLEET=1)")
	}
	runFleetTest(t, fleetConfig{
		N:      100,
		Dir:    t.TempDir(),
		Events: 20,
		Chaos:  true,
		// A hundred processes share however many cores the host offers —
		// on a loaded or single-core machine scheduling delay alone can
		// exceed the default failure-detector budget, flapping membership
		// and shedding the very traffic under test. Stretch every
		// protocol timer so the fleet is limited by the protocol, not the
		// scheduler.
		AnnounceInterval:    300 * time.Millisecond,
		Heartbeat:           750 * time.Millisecond,
		SuspectAfter:        3 * time.Second,
		DeadAfter:           8 * time.Second,
		InterestInterval:    2 * time.Second,
		ExploratoryInterval: 5 * time.Second,
		ConvergeTimeout:     5 * time.Minute,
	})
}

func runFleetTest(t *testing.T, cfg fleetConfig) {
	t.Helper()
	cfg.Logw = testWriter{t}
	rep, err := runFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != rep.Events {
		t.Errorf("delivered %d/%d events", rep.Delivered, rep.Events)
	}
	if rep.ConvergeMS <= 0 {
		t.Errorf("converge_ms = %d, want > 0", rep.ConvergeMS)
	}
	if rep.AnnouncesSent == 0 {
		t.Error("no discovery announces counted")
	}
	// One node may have been SIGKILL'd by chaos; everyone else must have
	// exited cleanly on SIGTERM.
	wantExits := cfg.N
	if rep.RelayKilled != 0 {
		wantExits--
	}
	if rep.CleanExits != wantExits {
		t.Errorf("clean exits = %d, want %d", rep.CleanExits, wantExits)
	}
	if cfg.Chaos && rep.RelayKilled != 0 && rep.RecoverMS == 0 {
		t.Error("relay killed but no recovery measured")
	}
	t.Logf("fleet report: %+v", rep)
}

// testWriter adapts t.Logf for run narration.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
