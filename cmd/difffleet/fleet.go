package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"diffusion/internal/chaos"
)

// fleetConfig parameterizes one fleet run. The zero value is unusable;
// withDefaults fills everything a test or the CLI leaves blank.
type fleetConfig struct {
	// N is the fleet size, including the seed (node 1).
	N int
	// Bin is a prebuilt diffnode binary; "" builds one into Dir (requires
	// running inside the module, as `go test` and the repo checkout do).
	Bin string
	// Dir holds the binary, address files and (with NodeLogs) node logs.
	Dir string
	// NodeLogs writes each node's stderr to Dir/node-<id>.log.
	NodeLogs bool

	DegreeCap           int
	AnnounceInterval    time.Duration
	Heartbeat           time.Duration
	SuspectAfter        time.Duration
	DeadAfter           time.Duration
	InterestInterval    time.Duration
	ExploratoryInterval time.Duration

	// Events is the publish→subscribe workload size (all must arrive).
	Events int
	// Chaos kills the sink's busiest relay mid-stream and measures
	// recovery.
	Chaos bool

	// Durable equips every node for disruption tolerance: a custody
	// journal, a state file for warm restarts, and a duplicate-
	// suppression horizon outlasting any scheduled partition. Campaigns
	// set this; the plain fleet run does not.
	Durable bool
	// SeenTTL is the sink-side duplicate-suppression horizon under
	// Durable (default 15m — longer than any campaign partition, so a
	// custody replay after heal is recognized, not re-delivered).
	SeenTTL time.Duration

	// Stagger paces the joiners' boots; ConvergeTimeout bounds the wait
	// for full-mesh membership.
	Stagger         time.Duration
	ConvergeTimeout time.Duration

	// Logw receives run narration (nil: discard).
	Logw io.Writer
}

// withDefaults fills unset knobs. The timing profile is tuned for a
// loopback fleet of ~100 race-built processes on one host: announce fast
// enough that gossip converges in tens of seconds, heartbeats slow
// enough that the aggregate packet rate stays civil.
func (c fleetConfig) withDefaults() fleetConfig {
	if c.N == 0 {
		c.N = 100
	}
	if c.DegreeCap == 0 {
		c.DegreeCap = 8
	}
	if c.AnnounceInterval == 0 {
		c.AnnounceInterval = 100 * time.Millisecond
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 150 * time.Millisecond
	}
	if c.SuspectAfter == 0 {
		c.SuspectAfter = 450 * time.Millisecond
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 1200 * time.Millisecond
	}
	if c.InterestInterval == 0 {
		c.InterestInterval = 500 * time.Millisecond
	}
	if c.ExploratoryInterval == 0 {
		c.ExploratoryInterval = 3 * time.Second
	}
	if c.Events == 0 {
		c.Events = 20
	}
	if c.Stagger == 0 {
		c.Stagger = 15 * time.Millisecond
	}
	if c.SeenTTL == 0 {
		c.SeenTTL = 15 * time.Minute
	}
	if c.ConvergeTimeout == 0 {
		c.ConvergeTimeout = 3 * time.Minute
	}
	if c.Logw == nil {
		c.Logw = io.Discard
	}
	return c
}

// fleetReport is what a run proves, JSON-rendered by the CLI.
type fleetReport struct {
	N             int    `json:"n"`
	ConvergeMS    int64  `json:"converge_ms"`
	AnnouncesSent uint64 `json:"announces_sent"`
	Delivered     int    `json:"delivered"`
	Events        int    `json:"events"`
	RelayKilled   uint32 `json:"relay_killed,omitempty"`
	RecoverMS     int64  `json:"recover_ms,omitempty"`
	CleanExits    int    `json:"clean_exits"`
}

// fleet is one running fleet: the seed plus joiners, all reached through
// their address files.
type fleet struct {
	cfg    fleetConfig
	client *http.Client
	procs  map[uint32]*chaos.Proc
	seed   *chaos.Proc
}

// runFleet is the whole experiment: build, boot from a single seed,
// converge, deliver the event stream, optionally kill the busiest relay
// and measure recovery, tear down cleanly.
func runFleet(cfg fleetConfig) (*fleetReport, error) {
	cfg = cfg.withDefaults()
	f := &fleet{
		cfg:    cfg,
		client: &http.Client{Timeout: 5 * time.Second},
		procs:  map[uint32]*chaos.Proc{},
	}
	defer f.teardownKill()

	bin, err := buildNodeBin(cfg)
	if err != nil {
		return nil, err
	}

	rep := &fleetReport{N: cfg.N, Events: cfg.Events}
	start := time.Now()

	if _, err := f.bootAll(bin); err != nil {
		return nil, err
	}

	// Convergence: walk the mesh from the seed until every node is
	// reachable, has at least one live mutual neighbor, and respects the
	// degree cap.
	nodes, err := f.awaitConvergence(start)
	if err != nil {
		return nil, err
	}
	rep.ConvergeMS = time.Since(start).Milliseconds()
	fmt.Fprintf(cfg.Logw, "difffleet: %d nodes converged in %v\n", cfg.N, time.Since(start).Round(time.Millisecond))

	// Workload: the seed sinks, the deepest node sources — the longest
	// gradient path the mesh offers.
	sourceID := pickSource(nodes)
	source := f.procs[sourceID]
	fmt.Fprintf(cfg.Logw, "difffleet: sink 1, source %d (depth %d)\n", sourceID, nodes[sourceID].Depth)
	if _, err := f.post(f.seed, "/subscribe", "type EQ fleet-sweep, interval IS 1"); err != nil {
		return nil, err
	}
	pubResp, err := f.post(source, "/publish", "type IS fleet-sweep")
	if err != nil {
		return nil, err
	}
	pub := int(pubResp["handle"].(float64))

	// The sink's interest must flood out to the source before data flows.
	if err := f.await(30*time.Second, "interest at source", func() (bool, error) {
		st, err := f.get(source, "/state")
		if err != nil {
			return false, nil
		}
		n, _ := st["interest_entries"].(float64)
		return n >= 1, nil
	}); err != nil {
		return nil, err
	}

	// Send the stream, then re-send whatever did not arrive: distinct
	// sequence numbers make retries idempotent at the counter.
	if rep.Delivered, err = f.deliver(source, pub, 0, cfg.Events); err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Logw, "difffleet: delivered %d/%d events\n", rep.Delivered, cfg.Events)

	if cfg.Chaos && rep.Delivered > 0 {
		if err := f.chaosRelay(rep, sourceID, pub); err != nil {
			return nil, err
		}
	}

	rep.AnnouncesSent = f.scrapeAnnounces()
	rep.CleanExits = f.teardownGraceful()
	return rep, nil
}

// buildNodeBin resolves cfg.Bin, building a diffnode into cfg.Dir when
// none was given (requires running inside the module, as `go test` and
// the repo checkout do).
func buildNodeBin(cfg fleetConfig) (string, error) {
	if cfg.Bin != "" {
		return cfg.Bin, nil
	}
	bin := filepath.Join(cfg.Dir, "diffnode")
	fmt.Fprintf(cfg.Logw, "difffleet: building %s\n", bin)
	build := exec.Command("go", "build", "-o", bin, "diffusion/cmd/diffnode")
	if out, err := build.CombinedOutput(); err != nil {
		return "", fmt.Errorf("difffleet: go build: %v\n%s", err, out)
	}
	return bin, nil
}

// bootAll boots the whole fleet: the seed — the only node starting with
// zero knowledge — then every joiner pointed at the seed's UDP address,
// learning the rest of the mesh by gossip. The seed's UDP port is
// pre-allocated rather than ephemeral: every joiner's argv names it as
// the bootstrap address, so a campaign that SIGKILLs and warm-restarts
// the seed must bring it back on the same port for those configured
// announces to find it again.
func (f *fleet) bootAll(bin string) (chaos.AddrFile, error) {
	ports, err := chaos.FreePorts("udp", 1)
	if err != nil {
		return chaos.AddrFile{}, err
	}
	seed, seedAddr, err := f.spawn(bin, 1,
		"-listen", fmt.Sprintf("127.0.0.1:%d", ports[0]), "-discover")
	if err != nil {
		return seedAddr, err
	}
	f.seed = seed
	fmt.Fprintf(f.cfg.Logw, "difffleet: seed up at udp %s http %s\n", seedAddr.UDP, seedAddr.HTTP)
	for id := uint32(2); id <= uint32(f.cfg.N); id++ {
		if _, _, err := f.spawn(bin, id, "-seed", seedAddr.UDP); err != nil {
			return seedAddr, err
		}
		time.Sleep(f.cfg.Stagger)
	}
	return seedAddr, nil
}

// spawn launches one diffnode on ephemeral ports and waits for its
// address file.
func (f *fleet) spawn(bin string, id uint32, extra ...string) (*chaos.Proc, chaos.AddrFile, error) {
	cfg := f.cfg
	addrPath := filepath.Join(cfg.Dir, fmt.Sprintf("node-%d.addr", id))
	argv := []string{bin,
		"-id", fmt.Sprint(id),
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
		"-addr-file", addrPath,
		"-degree-cap", fmt.Sprint(cfg.DegreeCap),
		"-announce-interval", cfg.AnnounceInterval.String(),
		"-heartbeat", cfg.Heartbeat.String(),
		"-suspect-after", cfg.SuspectAfter.String(),
		"-dead-after", cfg.DeadAfter.String(),
		"-interest-interval", cfg.InterestInterval.String(),
		"-exploratory-interval", cfg.ExploratoryInterval.String(),
		"-reliable",
		"-drain", "50ms",
	}
	if cfg.Durable {
		argv = append(argv,
			"-custody-file", filepath.Join(cfg.Dir, fmt.Sprintf("node-%d.custody", id)),
			"-state-file", filepath.Join(cfg.Dir, fmt.Sprintf("node-%d.state", id)),
			"-seen-ttl", cfg.SeenTTL.String(),
		)
	}
	argv = append(argv, extra...)
	var logw io.Writer
	if cfg.NodeLogs {
		lf, err := os.Create(filepath.Join(cfg.Dir, fmt.Sprintf("node-%d.log", id)))
		if err != nil {
			return nil, chaos.AddrFile{}, err
		}
		logw = lf
	}
	p, err := chaos.Start(chaos.ProcSpec{ID: id, Argv: argv, Log: logw})
	if err != nil {
		return nil, chaos.AddrFile{}, err
	}
	f.procs[id] = p
	a, err := chaos.WaitAddrFile(addrPath, 15*time.Second)
	if err != nil {
		return nil, a, fmt.Errorf("difffleet: node %d: %w", id, err)
	}
	p.SetHTTP(a.HTTP)
	return p, a, nil
}

// respawn warm-restarts a dead node. The address file is removed first
// so the fresh process's ephemeral ports are re-learned rather than the
// stale ones reused; the proc re-execs its identical argv — picking up
// -custody-file and -state-file recovery — and the harness's HTTP
// mirror is repointed at the new control plane.
func (f *fleet) respawn(id uint32) error {
	p := f.procs[id]
	if p == nil {
		return fmt.Errorf("difffleet: respawn: unknown node %d", id)
	}
	addrPath := filepath.Join(f.cfg.Dir, fmt.Sprintf("node-%d.addr", id))
	os.Remove(addrPath)
	if err := p.Restart(); err != nil {
		return err
	}
	a, err := chaos.WaitAddrFile(addrPath, 15*time.Second)
	if err != nil {
		return fmt.Errorf("difffleet: node %d restart: %w", id, err)
	}
	p.SetHTTP(a.HTTP)
	return nil
}

// entry returns the walk entry point: the seed while it lives, else the
// lowest-ID survivor (campaigns kill the seed on purpose; the census
// must not die with it).
func (f *fleet) entry() *chaos.Proc {
	if f.seed != nil && f.seed.Alive() {
		return f.seed
	}
	var best *chaos.Proc
	for _, p := range f.procs {
		if p.Alive() && (best == nil || p.ID() < best.ID()) {
			best = p
		}
	}
	return best
}

// fleetNode is one node's membership view during a walk, annotated with
// its BFS depth from the seed.
type fleetNode struct {
	HTTP   string
	Degree int
	Cap    int
	Depth  int
	Rows   []neighborRow
}

type neighborRow struct {
	ID       uint32 `json:"id"`
	HTTP     string `json:"http"`
	Member   string `json:"member"`
	Peered   bool   `json:"peered"`
	State    string `json:"state"`
	DataRecv uint64 `json:"data_recv"`
}

// walk BFS-walks GET /neighbors from the entry point (the seed, or a
// survivor once campaigns have killed it). Unreachable nodes are simply
// absent from the result; convergence polling treats that as not yet
// converged.
func (f *fleet) walk() map[uint32]*fleetNode {
	nodes := map[uint32]*fleetNode{}
	e := f.entry()
	if e == nil {
		return nodes
	}
	type hop struct {
		id    uint32
		http  string
		depth int
	}
	queue := []hop{{e.ID(), e.HTTPAddr(), 0}}
	seen := map[uint32]bool{e.ID(): true}
	for i := 0; i < len(queue); i++ {
		h := queue[i]
		resp, err := f.client.Get("http://" + h.http + "/neighbors")
		if err != nil {
			continue
		}
		var body struct {
			ID        uint32        `json:"id"`
			Degree    int           `json:"degree"`
			Cap       int           `json:"cap"`
			Neighbors []neighborRow `json:"neighbors"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.ID != h.id {
			continue
		}
		nodes[h.id] = &fleetNode{HTTP: h.http, Degree: body.Degree, Cap: body.Cap,
			Depth: h.depth, Rows: body.Neighbors}
		for _, row := range body.Neighbors {
			if row.Member == "neighbor" && row.HTTP != "" && !seen[row.ID] {
				seen[row.ID] = true
				queue = append(queue, hop{row.ID, row.HTTP, h.depth + 1})
			}
		}
	}
	return nodes
}

// awaitConvergence polls the walk until the whole fleet is present and
// healthy: reachable from the seed, ≥1 live mutual neighbor each, degree
// within the cap.
func (f *fleet) awaitConvergence(start time.Time) (map[uint32]*fleetNode, error) {
	var nodes map[uint32]*fleetNode
	lastMissing := 0
	err := f.await(f.cfg.ConvergeTimeout, "mesh convergence", func() (bool, error) {
		nodes = f.walk()
		lastMissing = f.cfg.N - len(nodes)
		if len(nodes) != f.cfg.N {
			return false, nil
		}
		for id, n := range nodes {
			if n.Degree > n.Cap {
				return false, fmt.Errorf("difffleet: node %d degree %d exceeds cap %d", id, n.Degree, n.Cap)
			}
			live := 0
			for _, row := range n.Rows {
				if row.Member == "neighbor" && row.Peered && row.State != "dead" {
					live++
				}
			}
			if live == 0 {
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, fmt.Errorf("%w (last walk reached %d/%d nodes)", err, f.cfg.N-lastMissing, f.cfg.N)
	}
	return nodes, nil
}

// pickSource prefers the node deepest from the seed, so the workload
// crosses real relays; ties go to the highest ID.
func pickSource(nodes map[uint32]*fleetNode) uint32 {
	best, bestDepth := uint32(0), -1
	for id, n := range nodes {
		if id == 1 {
			continue
		}
		if n.Depth > bestDepth || (n.Depth == bestDepth && id > best) {
			best, bestDepth = id, n.Depth
		}
	}
	return best
}

// deliver sends events [base, base+count) from the source and waits for
// every distinct sequence to arrive at the sink, re-sending stragglers.
// Returns the number of distinct events delivered.
func (f *fleet) deliver(source *chaos.Proc, pub, base, count int) (int, error) {
	want := map[int]bool{}
	for i := 0; i < count; i++ {
		want[base+i] = true
	}
	send := func(seq int) error {
		_, err := f.post(source, "/send",
			fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d"}`, pub, seq))
		return err
	}
	for i := 0; i < count; i++ {
		if err := send(base + i); err != nil {
			return 0, err
		}
		time.Sleep(50 * time.Millisecond)
	}
	var got map[int]bool
	// Three rounds: wait, then re-send what is missing — explicitly
	// exploratory, so a retry floods along every gradient instead of
	// trusting a reinforced path that may have just churned.
	for round := 0; round < 3; round++ {
		f.await(15*time.Second, "event delivery", func() (bool, error) {
			got = f.sinkSequences(base)
			return len(got) >= count, nil
		})
		if len(got) >= count {
			break
		}
		st, _ := f.get(source, "/state")
		entries, _ := st["interest_entries"].(float64)
		fmt.Fprintf(f.cfg.Logw, "difffleet: round %d: %d/%d delivered, source interest entries %.0f\n",
			round, len(got), count, entries)
		for seq := range want {
			if !got[seq] {
				if _, err := f.post(source, "/send",
					fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d", "exploratory": true}`, pub, seq)); err != nil {
					return len(got), err
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
	return len(got), nil
}

// sinkSequences reads the sink's delivery ring and extracts distinct
// sequence numbers at or above base.
func (f *fleet) sinkSequences(base int) map[int]bool {
	got := map[int]bool{}
	dv, err := f.get(f.seed, "/deliveries")
	if err != nil {
		return got
	}
	recent, _ := dv["recent"].([]any)
	for _, e := range recent {
		attrs, _ := e.(map[string]any)["attrs"].(string)
		m := seqRe.FindStringSubmatch(attrs)
		if m == nil {
			continue
		}
		var seq int
		fmt.Sscanf(m[1], "%d", &seq)
		if seq >= base {
			got[seq] = true
		}
	}
	return got
}

var seqRe = regexp.MustCompile(`sequence IS (\d+)`)

// chaosRelay is the scale version of the kill-the-relay experiment: find
// the neighbor delivering the most data into the sink, SIGKILL it, keep
// publishing, and require delivery to resume within the detector's dead
// window plus two exploratory floods.
func (f *fleet) chaosRelay(rep *fleetReport, sourceID uint32, pub int) error {
	sink, err := f.get(f.seed, "/neighbors")
	if err != nil {
		return err
	}
	raw, _ := json.Marshal(sink["neighbors"])
	var rows []neighborRow
	json.Unmarshal(raw, &rows)
	var relay uint32
	var busiest uint64
	for _, row := range rows {
		if row.Member != "neighbor" || row.ID == sourceID {
			continue
		}
		if relay == 0 || row.DataRecv > busiest {
			relay, busiest = row.ID, row.DataRecv
		}
	}
	if relay == 0 {
		fmt.Fprintf(f.cfg.Logw, "difffleet: chaos skipped: sink has no relay other than the source\n")
		return nil
	}
	fmt.Fprintf(f.cfg.Logw, "difffleet: killing relay %d (%d frames into the sink)\n", relay, busiest)
	if err := f.procs[relay].Kill(); err != nil {
		return err
	}
	rep.RelayKilled = relay
	killed := time.Now()

	// Publish through the hole until a post-kill event lands. Detection
	// takes up to DeadAfter; the next exploratory flood finds a path
	// around the corpse and reinforcement follows it.
	source := f.procs[sourceID]
	deadline := f.cfg.DeadAfter + 2*f.cfg.ExploratoryInterval + 10*time.Second
	const chaosBase = 1000
	seq := chaosBase
	err = f.await(deadline, "post-kill delivery", func() (bool, error) {
		f.post(source, "/send",
			fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d"}`, pub, seq))
		seq++
		time.Sleep(150 * time.Millisecond)
		return len(f.sinkSequences(chaosBase)) > 0, nil
	})
	if err != nil {
		return fmt.Errorf("difffleet: no delivery after relay kill: %w", err)
	}
	rep.RecoverMS = time.Since(killed).Milliseconds()
	fmt.Fprintf(f.cfg.Logw, "difffleet: delivery resumed %v after the kill\n",
		time.Since(killed).Round(time.Millisecond))
	return nil
}

// scrapeAnnounces sums discovery announces across the fleet's /metrics.
func (f *fleet) scrapeAnnounces() uint64 {
	return f.scrapeMetric("diffusion_discovery_announces_sent")
}

// scrapeMetric sums one per-node counter across the living fleet's
// /metrics endpoints. Dead nodes are skipped and a restarted node's
// counter starts over, so sums are a floor, not an exact lifetime
// total — good enough for the bounds the harness asserts.
func (f *fleet) scrapeMetric(name string) uint64 {
	var total uint64
	for id, p := range f.procs {
		if !p.Alive() {
			continue
		}
		resp, err := f.client.Get(fmt.Sprintf("http://%s/metrics", p.HTTPAddr()))
		if err != nil {
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		series := fmt.Sprintf(`%s{scope="node%d"}`, name, id)
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, series+" ") {
				var v float64
				fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v)
				total += uint64(v)
			}
		}
	}
	return total
}

// teardownGraceful SIGTERMs every living node and counts clean exits.
func (f *fleet) teardownGraceful() int {
	clean := 0
	for _, p := range f.procs {
		if !p.Alive() {
			continue
		}
		if err := p.Terminate(15 * time.Second); err != nil {
			fmt.Fprintf(f.cfg.Logw, "difffleet: %v\n", err)
			continue
		}
		clean++
	}
	return clean
}

// teardownKill is the deferred backstop: anything still alive when the
// run unwinds gets SIGKILL so no orphan outlives the experiment.
func (f *fleet) teardownKill() {
	for _, p := range f.procs {
		if p.Alive() {
			p.Kill()
		}
	}
}

// await polls cond until it reports done, errors, or the deadline
// passes.
func (f *fleet) await(timeout time.Duration, what string, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := cond()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("difffleet: %s: timeout after %v", what, timeout)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// post issues one control-plane POST and decodes the JSON reply.
func (f *fleet) post(p *chaos.Proc, path, body string) (map[string]any, error) {
	resp, err := f.client.Post("http://"+p.HTTPAddr()+path, "text/plain", strings.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("difffleet: node %d %s: %w", p.ID(), path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	raw, _ := io.ReadAll(resp.Body)
	json.Unmarshal(raw, &out)
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("difffleet: node %d %s: %d: %s", p.ID(), path, resp.StatusCode, raw)
	}
	return out, nil
}

// get issues one control-plane GET and decodes the JSON reply.
func (f *fleet) get(p *chaos.Proc, path string) (map[string]any, error) {
	resp, err := f.client.Get("http://" + p.HTTPAddr() + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("difffleet: node %d %s: %d", p.ID(), path, resp.StatusCode)
	}
	return out, nil
}
