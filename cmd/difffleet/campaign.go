package main

// A chaos campaign is a declarative schedule of timed fault verbs run
// against a converged, discovered fleet while a continuous event stream
// crosses it. The engine boots the fleet durable (custody journals,
// state files, a long duplicate-suppression horizon), picks the two
// deepest nodes as sink and source — never the seed, which campaigns
// are allowed to kill — and then executes the phases in order:
// partitions (bisect or islands) with census re-convergence checks
// after every heal, per-node and mesh-wide loss ramps, custody splits
// with a custodian SIGKILL and warm restart mid-partition, targeted
// kills, and rolling restarts. Throughout, an invariant checker follows
// the sink's delivery ring: at the end every event the source accepted
// must have arrived exactly once, the membership census must have
// re-converged, and discovery demotion churn must be bounded.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"diffusion/internal/chaos"
)

// jsonDuration is a time.Duration that reads "250ms"/"2s" strings (or
// raw milliseconds) from campaign files and renders back as a string.
type jsonDuration struct{ time.Duration }

func (d *jsonDuration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		d.Duration = v
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return fmt.Errorf(`duration: want "2s" or milliseconds, got %s`, b)
	}
	d.Duration = time.Duration(ms * float64(time.Millisecond))
	return nil
}

func (d jsonDuration) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// campaign is the schedule: global stream/verification knobs plus the
// ordered fault phases.
type campaign struct {
	Name string `json:"name"`
	// StreamInterval paces the continuous source→sink event stream
	// (default 250ms).
	StreamInterval jsonDuration `json:"stream_interval"`
	// ReconvergeWithin bounds how long the membership census may take to
	// re-converge after each heal (default 2m).
	ReconvergeWithin jsonDuration `json:"reconverge_within"`
	// DrainTimeout bounds the final wait for every accepted event to
	// arrive after the last phase (default 2m).
	DrainTimeout jsonDuration `json:"drain_timeout"`
	// DemotionsPerNode bounds mean discovery demotion churn per node
	// across the whole campaign (default 50).
	DemotionsPerNode float64 `json:"demotions_per_node"`
	Phases           []phase `json:"phases"`
}

// phase is one timed fault verb. Which fields matter depends on Verb;
// parseCampaign rejects combinations that make no sense.
type phase struct {
	Name string `json:"name"`
	// Verb: partition | loss | custody-split | kill | rolling-restart |
	// heal | sleep.
	Verb string `json:"verb"`
	// Mode (partition): bisect (default) splits the fleet in ID halves
	// with source and sink forced to opposite sides; islands splits it
	// into Islands round-robin groups.
	Mode    string `json:"mode,omitempty"`
	Islands int    `json:"islands,omitempty"`
	// Hold is how long the fault stays in force before the phase ends
	// (for custody-split, measured from the partition; set it ≥3× the
	// soft-state horizon to prove custody outlives the gradients).
	Hold jsonDuration `json:"hold,omitempty"`
	// Heal (partition): heal at end of phase and require census
	// re-convergence. Defaults true; set false to leave the split in
	// force for compound faults (a later heal phase lifts it).
	Heal *bool `json:"heal,omitempty"`
	// Level (loss): target egress loss probability in [0,1).
	Level float64 `json:"level,omitempty"`
	// Nodes (loss): restrict the ramp to these IDs (empty: mesh-wide).
	Nodes     []uint32     `json:"nodes,omitempty"`
	RampSteps int          `json:"ramp_steps,omitempty"`
	RampHold  jsonDuration `json:"ramp_hold,omitempty"`
	// Target (kill): seed | relay | custodian | a numeric node ID.
	Target string `json:"target,omitempty"`
	// Restart (kill): warm-restart the victim KillWait after the kill.
	Restart  bool         `json:"restart,omitempty"`
	KillWait jsonDuration `json:"kill_wait,omitempty"`
	// Batch/Pause/Count (rolling-restart): nodes per batch, pause
	// between batches, and how many nodes to roll in total (0: every
	// node except seed, sink and source).
	Batch int          `json:"batch,omitempty"`
	Pause jsonDuration `json:"pause,omitempty"`
	Count int          `json:"count,omitempty"`
}

// campaignVerbs is the closed verb set, for validation.
var campaignVerbs = map[string]bool{
	"partition": true, "loss": true, "custody-split": true,
	"kill": true, "rolling-restart": true, "heal": true, "sleep": true,
}

// parseCampaign decodes and validates a campaign file, applying
// defaults. Unknown fields are rejected so a typo'd knob fails loudly
// instead of silently running a weaker campaign.
func parseCampaign(raw []byte) (*campaign, error) {
	var c campaign
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if c.Name == "" {
		c.Name = "campaign"
	}
	if c.StreamInterval.Duration == 0 {
		c.StreamInterval.Duration = 250 * time.Millisecond
	}
	if c.ReconvergeWithin.Duration == 0 {
		c.ReconvergeWithin.Duration = 2 * time.Minute
	}
	if c.DrainTimeout.Duration == 0 {
		c.DrainTimeout.Duration = 2 * time.Minute
	}
	if c.DemotionsPerNode == 0 {
		c.DemotionsPerNode = 50
	}
	if len(c.Phases) == 0 {
		return nil, fmt.Errorf("campaign: no phases")
	}
	for i := range c.Phases {
		p := &c.Phases[i]
		if p.Name == "" {
			p.Name = fmt.Sprintf("phase-%d", i+1)
		}
		if !campaignVerbs[p.Verb] {
			return nil, fmt.Errorf("campaign: phase %q: unknown verb %q", p.Name, p.Verb)
		}
		switch p.Verb {
		case "partition":
			switch p.Mode {
			case "", "bisect":
				p.Mode = "bisect"
			case "islands":
				if p.Islands == 0 {
					p.Islands = 3
				}
				if p.Islands < 2 {
					return nil, fmt.Errorf("campaign: phase %q: islands must be >= 2", p.Name)
				}
			default:
				return nil, fmt.Errorf("campaign: phase %q: unknown partition mode %q", p.Name, p.Mode)
			}
			if p.Hold.Duration <= 0 {
				return nil, fmt.Errorf("campaign: phase %q: partition needs a hold", p.Name)
			}
		case "loss":
			if p.Level < 0 || p.Level >= 1 {
				return nil, fmt.Errorf("campaign: phase %q: loss level %v outside [0,1)", p.Name, p.Level)
			}
			if p.RampSteps == 0 {
				p.RampSteps = 3
			}
			if p.RampHold.Duration == 0 {
				p.RampHold.Duration = time.Second
			}
		case "custody-split":
			if p.Hold.Duration <= 0 {
				return nil, fmt.Errorf("campaign: phase %q: custody-split needs a hold", p.Name)
			}
			if p.KillWait.Duration == 0 {
				p.KillWait.Duration = 2 * time.Second
			}
		case "kill":
			if p.Target == "" {
				return nil, fmt.Errorf("campaign: phase %q: kill needs a target", p.Name)
			}
			if p.KillWait.Duration == 0 {
				p.KillWait.Duration = 2 * time.Second
			}
		case "rolling-restart":
			if p.Batch == 0 {
				p.Batch = 5
			}
			if p.Pause.Duration == 0 {
				p.Pause.Duration = 2 * time.Second
			}
		case "sleep":
			if p.Hold.Duration <= 0 {
				return nil, fmt.Errorf("campaign: phase %q: sleep needs a hold", p.Name)
			}
		}
	}
	return &c, nil
}

// campaignVerdict is the machine-readable outcome, one JSON document on
// stdout. The schema is pinned by TestVerdictSchema; CI and operators
// parse it, so field changes are API changes.
type campaignVerdict struct {
	Campaign   string          `json:"campaign"`
	N          int             `json:"n"`
	ConvergeMS int64           `json:"converge_ms"`
	Sink       uint32          `json:"sink"`
	Source     uint32          `json:"source"`
	Phases     []phaseVerdict  `json:"phases"`
	Invariants invariantReport `json:"invariants"`
	OK         bool            `json:"ok"`
}

// phaseVerdict is one phase's outcome.
type phaseVerdict struct {
	Name    string `json:"name"`
	Verb    string `json:"verb"`
	StartMS int64  `json:"start_ms"`
	// DurationMS covers the whole phase including holds and heals.
	DurationMS int64 `json:"duration_ms"`
	// ReconvergeMS is how long the membership census took to re-converge
	// after this phase's heal (0 when the phase did not heal).
	ReconvergeMS int64  `json:"reconverge_ms,omitempty"`
	Detail       string `json:"detail,omitempty"`
	OK           bool   `json:"ok"`
	Error        string `json:"error,omitempty"`
}

// invariantReport is the campaign-wide verdict on the properties every
// phase must preserve.
type invariantReport struct {
	// Sent counts events the source accepted (HTTP 200 on /send);
	// Delivered counts distinct events that reached the sink.
	Sent      int `json:"sent"`
	Delivered int `json:"delivered"`
	// Duplicates counts extra arrivals of already-delivered events (must
	// be 0: custody hand-off is exactly-once under the seen horizon).
	Duplicates int `json:"duplicates"`
	// Missing lists undelivered sequences, capped at 20 entries.
	Missing []int `json:"missing,omitempty"`
	// RingOverrun flags that the sink's delivery ring wrapped between
	// polls — the loss/dup counts would be unreliable, so it fails the
	// campaign on its own.
	RingOverrun bool `json:"ring_overrun,omitempty"`
	// Demotions is fleet-wide discovery demotion churn, bounded by
	// DemotionsBound (= demotions_per_node × n).
	Demotions      uint64 `json:"demotions"`
	DemotionsBound uint64 `json:"demotions_bound"`
	CleanExits     int    `json:"clean_exits"`
	OK             bool   `json:"ok"`
}

// Exit codes, pinned by TestExitCode: 0 — the campaign ran and every
// invariant held; 1 — usage or infrastructure failure (the campaign
// never produced a verdict); 2 — the campaign ran but a phase or
// invariant failed. CI treats 1 as "rerun me", 2 as "the protocol broke".
const (
	exitOK        = 0
	exitInfra     = 1
	exitInvariant = 2
)

// exitCode maps a campaign outcome onto the process exit code.
func exitCode(v *campaignVerdict, err error) int {
	if v == nil {
		return exitInfra
	}
	if !v.OK {
		return exitInvariant
	}
	if err != nil {
		return exitInfra
	}
	return exitOK
}

// campaignRun is the live state of one executing campaign.
type campaignRun struct {
	f      *fleet
	camp   *campaign
	sink   *chaos.Proc
	source *chaos.Proc
	pub    int

	mu      sync.Mutex
	sent    map[int]bool // stream sequences the source accepted
	counts  map[int]int  // arrivals per stream sequence at the sink
	cursor  int          // last delivery-ring Seq consumed
	overrun bool

	stopSend    chan struct{}
	senderDone  chan struct{}
	stopCheck   chan struct{}
	checkerDone chan struct{}
}

// runCampaign executes one campaign end to end and returns its verdict.
// An error with a nil verdict is infrastructure failure; a verdict with
// OK=false is the campaign finding a real violation.
func runCampaign(cfg fleetConfig, camp *campaign) (*campaignVerdict, error) {
	cfg.Durable = true
	cfg = cfg.withDefaults()
	f := &fleet{
		cfg:    cfg,
		client: &http.Client{Timeout: 5 * time.Second},
		procs:  map[uint32]*chaos.Proc{},
	}
	defer f.teardownKill()

	bin, err := buildNodeBin(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := f.bootAll(bin); err != nil {
		return nil, err
	}
	nodes, err := f.awaitConvergence(start)
	if err != nil {
		return nil, err
	}
	v := &campaignVerdict{Campaign: camp.Name, N: cfg.N,
		ConvergeMS: time.Since(start).Milliseconds()}
	fmt.Fprintf(cfg.Logw, "difffleet: %d nodes converged in %v\n",
		cfg.N, time.Since(start).Round(time.Millisecond))

	sinkID, sourceID := pickEndpoints(nodes)
	if sinkID == 0 || sourceID == 0 {
		return nil, fmt.Errorf("difffleet: campaign needs at least 3 nodes for seed, sink and source")
	}
	v.Sink, v.Source = sinkID, sourceID
	r := &campaignRun{
		f: f, camp: camp,
		sink: f.procs[sinkID], source: f.procs[sourceID],
		sent: map[int]bool{}, counts: map[int]int{},
	}
	fmt.Fprintf(cfg.Logw, "difffleet: sink %d (depth %d), source %d (depth %d)\n",
		sinkID, nodes[sinkID].Depth, sourceID, nodes[sourceID].Depth)

	if _, err := f.post(r.sink, "/subscribe", "type EQ fleet-sweep, interval IS 1"); err != nil {
		return nil, err
	}
	pubResp, err := f.post(r.source, "/publish", "type IS fleet-sweep")
	if err != nil {
		return nil, err
	}
	r.pub = int(pubResp["handle"].(float64))
	if err := f.await(30*time.Second, "interest at source", func() (bool, error) {
		st, err := f.get(r.source, "/state")
		if err != nil {
			return false, nil
		}
		n, _ := st["interest_entries"].(float64)
		return n >= 1, nil
	}); err != nil {
		return nil, err
	}

	r.startStream()
	// Warm up until delivery is steady: the first sends travel as
	// exploratory data and prime reinforcement, and custody-transfer
	// replay needs a reinforced gradient to drain along — faulting a
	// mesh that never carried the stream would test nothing and strand
	// the early events with no path to vouch for them.
	if err := f.await(time.Minute, "steady delivery before the first phase", func() (bool, error) {
		return r.deliveredCount() >= 5, nil
	}); err != nil {
		return nil, fmt.Errorf("difffleet: stream never established: %w", err)
	}
	base := time.Now()
	for i := range camp.Phases {
		pv := r.runPhase(&camp.Phases[i], base)
		v.Phases = append(v.Phases, pv)
	}
	r.finish(v)

	v.OK = v.Invariants.OK
	for _, pv := range v.Phases {
		v.OK = v.OK && pv.OK
	}
	return v, nil
}

// pickEndpoints chooses the sink and source: the two deepest non-seed
// nodes of the converged mesh (deepest = sink), so the stream crosses
// real relays and the seed stays neutral — campaigns may kill it.
func pickEndpoints(nodes map[uint32]*fleetNode) (sink, source uint32) {
	ids := make([]uint32, 0, len(nodes))
	for id := range nodes {
		if id != 1 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := nodes[ids[i]].Depth, nodes[ids[j]].Depth
		if di != dj {
			return di > dj
		}
		return ids[i] > ids[j]
	})
	if len(ids) < 2 {
		return 0, 0
	}
	return ids[0], ids[1]
}

// startStream launches the continuous sender and the sink checker. The
// sender counts an event as sent only when the source's control plane
// answered 200 — an event refused by a dead source is not owed to the
// sink. The checker consumes the sink's delivery ring incrementally and
// detects ring overrun, so loss/dup accounting never silently degrades.
func (r *campaignRun) startStream() {
	r.stopSend, r.senderDone = make(chan struct{}), make(chan struct{})
	r.stopCheck, r.checkerDone = make(chan struct{}), make(chan struct{})
	go func() {
		defer close(r.senderDone)
		tick := time.NewTicker(r.camp.StreamInterval.Duration)
		defer tick.Stop()
		for seq := 1; ; seq++ {
			select {
			case <-r.stopSend:
				return
			case <-tick.C:
			}
			body := fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d"}`, r.pub, seq)
			if _, err := r.f.post(r.source, "/send", body); err == nil {
				r.mu.Lock()
				r.sent[seq] = true
				r.mu.Unlock()
			}
		}
	}()
	go func() {
		defer close(r.checkerDone)
		for {
			select {
			case <-r.stopCheck:
				return
			case <-time.After(200 * time.Millisecond):
			}
			r.pollSink()
		}
	}()
}

// pollSink consumes new entries of the sink's delivery ring. Ring Seq
// values are contiguous from 1; a gap above the cursor means the ring
// wrapped between polls and arrivals were lost to accounting.
func (r *campaignRun) pollSink() {
	r.mu.Lock()
	cursor := r.cursor
	r.mu.Unlock()
	dv, err := r.f.get(r.sink, fmt.Sprintf("/deliveries?since=%d", cursor))
	if err != nil {
		return
	}
	recent, _ := dv["recent"].([]any)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range recent {
		ent, _ := e.(map[string]any)
		ringSeq, _ := ent["seq"].(float64)
		if int(ringSeq) <= r.cursor {
			continue // another poll already consumed it
		}
		if int(ringSeq) != r.cursor+1 {
			r.overrun = true
		}
		r.cursor = int(ringSeq)
		attrs, _ := ent["attrs"].(string)
		if m := seqRe.FindStringSubmatch(attrs); m != nil {
			seq, _ := strconv.Atoi(m[1])
			r.counts[seq]++
		}
	}
}

// missingLocked returns the accepted-but-undelivered sequences; caller
// holds r.mu.
func (r *campaignRun) missingLocked() []int {
	var missing []int
	for seq := range r.sent {
		if r.counts[seq] == 0 {
			missing = append(missing, seq)
		}
	}
	sort.Ints(missing)
	return missing
}

// deliveredCount returns how many distinct stream events have arrived.
func (r *campaignRun) deliveredCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.counts)
}

// runPhase executes one phase, narrates it, and folds failures into the
// phase verdict rather than aborting the campaign — later phases still
// run, and the campaign-level OK aggregates everything.
func (r *campaignRun) runPhase(p *phase, base time.Time) phaseVerdict {
	pv := phaseVerdict{Name: p.Name, Verb: p.Verb,
		StartMS: time.Since(base).Milliseconds(), OK: true}
	fmt.Fprintf(r.f.cfg.Logw, "difffleet: phase %q (%s) starting\n", p.Name, p.Verb)
	start := time.Now()
	var err error
	switch p.Verb {
	case "partition":
		err = r.doPartition(p, &pv)
	case "loss":
		err = r.doLoss(p, &pv)
	case "custody-split":
		err = r.doCustodySplit(p, &pv)
	case "kill":
		err = r.doKill(p, &pv)
	case "rolling-restart":
		err = r.doRollingRestart(p, &pv)
	case "heal":
		err = r.healAndReconverge(&pv)
	case "sleep":
		time.Sleep(p.Hold.Duration)
	}
	if err != nil {
		pv.OK, pv.Error = false, err.Error()
	}
	pv.DurationMS = time.Since(start).Milliseconds()
	fmt.Fprintf(r.f.cfg.Logw, "difffleet: phase %q done in %v ok=%v %s\n",
		p.Name, time.Since(start).Round(time.Millisecond), pv.OK, pv.Detail)
	return pv
}

// allProcs returns every managed proc (dead ones included — the group
// helpers skip those themselves).
func (r *campaignRun) allProcs() []*chaos.Proc {
	procs := make([]*chaos.Proc, 0, len(r.f.procs))
	for _, p := range r.f.procs {
		procs = append(procs, p)
	}
	return procs
}

// sortedIDs returns every node ID ascending.
func (r *campaignRun) sortedIDs() []uint32 {
	ids := make([]uint32, 0, len(r.f.procs))
	for id := range r.f.procs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// bisectGroups splits the fleet into two ID halves with source and sink
// forced onto opposite sides, so the stream must cross the cut.
func (r *campaignRun) bisectGroups() ([]*chaos.Proc, []*chaos.Proc) {
	ids := r.sortedIDs()
	side := map[uint32]int{}
	for i, id := range ids {
		if i < len(ids)/2 {
			side[id] = 0
		} else {
			side[id] = 1
		}
	}
	if side[r.sink.ID()] == side[r.source.ID()] {
		side[r.source.ID()] ^= 1
	}
	var a, b []*chaos.Proc
	for _, id := range ids {
		if side[id] == 0 {
			a = append(a, r.f.procs[id])
		} else {
			b = append(b, r.f.procs[id])
		}
	}
	return a, b
}

// islandGroups splits the fleet round-robin into k islands.
func (r *campaignRun) islandGroups(k int) [][]*chaos.Proc {
	groups := make([][]*chaos.Proc, k)
	for i, id := range r.sortedIDs() {
		groups[i%k] = append(groups[i%k], r.f.procs[id])
	}
	return groups
}

func (r *campaignRun) doPartition(p *phase, pv *phaseVerdict) error {
	var groups [][]*chaos.Proc
	if p.Mode == "islands" {
		groups = r.islandGroups(p.Islands)
		pv.Detail = fmt.Sprintf("%d islands", len(groups))
	} else {
		a, b := r.bisectGroups()
		groups = [][]*chaos.Proc{a, b}
		pv.Detail = fmt.Sprintf("bisect %d|%d", len(a), len(b))
	}
	if err := chaos.PartitionGroups(groups...); err != nil {
		return err
	}
	time.Sleep(p.Hold.Duration)
	if p.Heal == nil || *p.Heal {
		return r.healAndReconverge(pv)
	}
	return nil
}

// healAndReconverge lifts every block and requires the membership
// census — every living node reachable, each with a live mutual
// neighbor, degree within cap — to re-converge within the campaign
// bound.
func (r *campaignRun) healAndReconverge(pv *phaseVerdict) error {
	if err := chaos.HealAll(r.allProcs()...); err != nil {
		return err
	}
	d, err := r.awaitCensus(r.camp.ReconvergeWithin.Duration)
	if err != nil {
		return err
	}
	pv.ReconvergeMS = d.Milliseconds()
	return nil
}

// awaitCensus polls the mesh walk until every living node is reachable
// and healthy, returning how long that took.
func (r *campaignRun) awaitCensus(timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	alive := 0
	for _, p := range r.f.procs {
		if p.Alive() {
			alive++
		}
	}
	err := r.f.await(timeout, "census re-convergence", func() (bool, error) {
		nodes := r.f.walk()
		if len(nodes) != alive {
			return false, nil
		}
		for id, n := range nodes {
			if n.Degree > n.Cap {
				return false, fmt.Errorf("difffleet: node %d degree %d exceeds cap %d", id, n.Degree, n.Cap)
			}
			live := 0
			for _, row := range n.Rows {
				if row.Member == "neighbor" && row.Peered && row.State != "dead" {
					live++
				}
			}
			if live == 0 {
				return false, nil
			}
		}
		return true, nil
	})
	return time.Since(start), err
}

func (r *campaignRun) doLoss(p *phase, pv *phaseVerdict) error {
	var procs []*chaos.Proc
	if len(p.Nodes) == 0 {
		procs = r.allProcs()
	} else {
		for _, id := range p.Nodes {
			if q := r.f.procs[id]; q != nil {
				procs = append(procs, q)
			}
		}
	}
	for i := 1; i <= p.RampSteps; i++ {
		level := p.Level * float64(i) / float64(p.RampSteps)
		if err := chaos.SetLossAll(level, procs...); err != nil {
			return err
		}
		time.Sleep(p.RampHold.Duration)
	}
	// Delivery must continue at the full loss level: reliable unicast
	// retransmission is what the ramp stresses.
	before := r.deliveredCount()
	time.Sleep(p.Hold.Duration)
	gained := r.deliveredCount() - before
	if err := chaos.SetLossAll(0, procs...); err != nil {
		return err
	}
	pv.Detail = fmt.Sprintf("ramped %d nodes to %.0f%%, %d deliveries during hold",
		len(procs), p.Level*100, gained)
	if gained == 0 && p.Hold.Duration >= 4*r.camp.StreamInterval.Duration {
		return fmt.Errorf("difffleet: no deliveries during %v at %.0f%% loss",
			p.Hold.Duration, p.Level*100)
	}
	return nil
}

// doCustodySplit isolates the sink behind a partition, waits for an
// upstream node to take custody of the stranded stream, SIGKILLs that
// custodian mid-partition and warm-restarts it from its journal, holds
// the split for the full Hold (set it past the soft-state horizon so
// every gradient to the sink expires), then heals. The campaign-end
// zero-loss/zero-duplicate verdict is what proves the journal recovery
// handed every stranded event over exactly once.
func (r *campaignRun) doCustodySplit(p *phase, pv *phaseVerdict) error {
	start := time.Now()
	island := []*chaos.Proc{r.sink}
	rest := make([]*chaos.Proc, 0, len(r.f.procs)-1)
	for _, q := range r.f.procs {
		if q.ID() != r.sink.ID() {
			rest = append(rest, q)
		}
	}
	if err := chaos.PartitionGroups(island, rest); err != nil {
		return err
	}
	var custodian *chaos.Proc
	r.f.await(p.Hold.Duration/2, "custodian", func() (bool, error) {
		custodian = r.findCustodian()
		return custodian != nil, nil
	})
	if custodian != nil {
		fmt.Fprintf(r.f.cfg.Logw, "difffleet: killing custodian %d mid-partition\n", custodian.ID())
		if err := custodian.Kill(); err != nil {
			return err
		}
		time.Sleep(p.KillWait.Duration)
		if err := r.f.respawn(custodian.ID()); err != nil {
			return err
		}
		pv.Detail = fmt.Sprintf("custodian %d killed and warm-restarted mid-partition", custodian.ID())
	} else {
		pv.Detail = "no upstream custodian appeared; split held without a kill"
	}
	if remain := p.Hold.Duration - time.Since(start); remain > 0 {
		time.Sleep(remain)
	}
	return r.healAndReconverge(pv)
}

// findCustodian returns the living node (never the sink or source)
// holding the most custody, or nil when none holds any.
func (r *campaignRun) findCustodian() *chaos.Proc {
	var best *chaos.Proc
	var bestLen float64
	for id, q := range r.f.procs {
		if id == r.sink.ID() || id == r.source.ID() || !q.Alive() {
			continue
		}
		cu, err := r.f.get(q, "/custody")
		if err != nil {
			continue
		}
		n, _ := cu["len"].(float64)
		if n > bestLen {
			best, bestLen = q, n
		}
	}
	return best
}

func (r *campaignRun) doKill(p *phase, pv *phaseVerdict) error {
	target, desc, err := r.resolveTarget(p.Target)
	if err != nil {
		return err
	}
	if target.ID() == r.sink.ID() || target.ID() == r.source.ID() {
		return fmt.Errorf("difffleet: refusing to kill node %d: it is the stream %s",
			target.ID(), map[uint32]string{r.sink.ID(): "sink", r.source.ID(): "source"}[target.ID()])
	}
	fmt.Fprintf(r.f.cfg.Logw, "difffleet: killing %s\n", desc)
	if err := target.Kill(); err != nil {
		return err
	}
	pv.Detail = "killed " + desc
	time.Sleep(p.KillWait.Duration)
	if p.Restart {
		if err := r.f.respawn(target.ID()); err != nil {
			return err
		}
		if err := target.WaitHealthy(30 * time.Second); err != nil {
			return err
		}
		pv.Detail += ", warm-restarted"
	}
	time.Sleep(p.Hold.Duration)
	return nil
}

// resolveTarget maps a kill target name onto a living process: the
// seed, the sink's busiest relay, the current custodian, or a node ID.
func (r *campaignRun) resolveTarget(target string) (*chaos.Proc, string, error) {
	switch target {
	case "seed":
		if !r.f.seed.Alive() {
			return nil, "", fmt.Errorf("difffleet: seed already dead")
		}
		return r.f.seed, fmt.Sprintf("seed (node %d)", r.f.seed.ID()), nil
	case "relay":
		relay := r.busiestRelay()
		if relay == nil {
			return nil, "", fmt.Errorf("difffleet: sink has no relay other than the source")
		}
		return relay, fmt.Sprintf("relay %d", relay.ID()), nil
	case "custodian":
		c := r.findCustodian()
		if c == nil {
			return nil, "", fmt.Errorf("difffleet: no node holds custody")
		}
		return c, fmt.Sprintf("custodian %d", c.ID()), nil
	default:
		id, err := strconv.ParseUint(target, 10, 32)
		if err != nil {
			return nil, "", fmt.Errorf("difffleet: unknown kill target %q", target)
		}
		q := r.f.procs[uint32(id)]
		if q == nil || !q.Alive() {
			return nil, "", fmt.Errorf("difffleet: kill target %d not running", id)
		}
		return q, fmt.Sprintf("node %d", id), nil
	}
}

// busiestRelay finds the living neighbor delivering the most data into
// the sink, excluding the source itself.
func (r *campaignRun) busiestRelay() *chaos.Proc {
	nb, err := r.f.get(r.sink, "/neighbors")
	if err != nil {
		return nil
	}
	raw, _ := json.Marshal(nb["neighbors"])
	var rows []neighborRow
	json.Unmarshal(raw, &rows)
	var best *chaos.Proc
	var busiest uint64
	for _, row := range rows {
		if row.Member != "neighbor" || row.ID == r.source.ID() {
			continue
		}
		q := r.f.procs[row.ID]
		if q == nil || !q.Alive() {
			continue
		}
		if best == nil || row.DataRecv > busiest {
			best, busiest = q, row.DataRecv
		}
	}
	return best
}

// doRollingRestart terminates and warm-restarts nodes in batches — the
// supervisor-driven upgrade pattern. The seed, sink and source are
// exempt: restarting them would change what the campaign measures.
func (r *campaignRun) doRollingRestart(p *phase, pv *phaseVerdict) error {
	var eligible []uint32
	for _, id := range r.sortedIDs() {
		if id == 1 || id == r.sink.ID() || id == r.source.ID() || !r.f.procs[id].Alive() {
			continue
		}
		eligible = append(eligible, id)
	}
	if p.Count > 0 && p.Count < len(eligible) {
		eligible = eligible[:p.Count]
	}
	restarted := 0
	for i := 0; i < len(eligible); i += p.Batch {
		batch := eligible[i:min(i+p.Batch, len(eligible))]
		for _, id := range batch {
			if err := r.f.procs[id].Terminate(10 * time.Second); err != nil {
				fmt.Fprintf(r.f.cfg.Logw, "difffleet: rolling restart: %v\n", err)
			}
		}
		for _, id := range batch {
			if err := r.f.respawn(id); err != nil {
				return err
			}
		}
		for _, id := range batch {
			if err := r.f.procs[id].WaitHealthy(60 * time.Second); err != nil {
				return err
			}
			restarted++
		}
		time.Sleep(p.Pause.Duration)
	}
	pv.Detail = fmt.Sprintf("restarted %d nodes in batches of %d", restarted, p.Batch)
	return nil
}

// finish restores the network, waits for the stream to resume, then
// stops it, drains in-flight custody, and renders the campaign-wide
// invariant verdict. Order matters: the source must still be streaming
// across the healed mesh for reinforcement to re-prime — custody
// replay over a custody-capable link drains along reinforced
// gradients, and reinforcement only re-forms while data flows.
func (r *campaignRun) finish(v *campaignVerdict) {
	chaos.HealAll(r.allProcs()...)
	chaos.SetLossAll(0, r.allProcs()...)

	r.mu.Lock()
	healMark := 0
	for seq := range r.sent {
		if seq > healMark {
			healMark = seq
		}
	}
	r.mu.Unlock()
	r.f.await(r.camp.ReconvergeWithin.Duration, "stream to resume after the final heal",
		func() (bool, error) {
			r.mu.Lock()
			defer r.mu.Unlock()
			for seq := range r.counts {
				if seq > healMark {
					return true, nil
				}
			}
			return false, nil
		})

	close(r.stopSend)
	<-r.senderDone
	close(r.stopCheck)
	<-r.checkerDone

	// Drain: every accepted event must reach the sink. No resends — the
	// custody and reliable layers own redelivery; nudging them here
	// would mask the very loss the campaign exists to catch.
	r.f.await(r.camp.DrainTimeout.Duration, "final drain", func() (bool, error) {
		r.pollSink()
		r.mu.Lock()
		missing := len(r.missingLocked())
		r.mu.Unlock()
		return missing == 0, nil
	})

	// A failed drain means events are stranded or gone; dump every
	// node's custody ledger so the operator can tell which.
	r.mu.Lock()
	stranded := len(r.missingLocked())
	r.mu.Unlock()
	if stranded > 0 {
		for _, id := range r.sortedIDs() {
			q := r.f.procs[id]
			if !q.Alive() {
				continue
			}
			cu, err := r.f.get(q, "/custody")
			if err != nil {
				continue
			}
			fmt.Fprintf(r.f.cfg.Logw, "difffleet: custody at node %d: %v\n", id, cu)
		}
	}

	inv := &v.Invariants
	r.mu.Lock()
	inv.Sent = len(r.sent)
	inv.Delivered = len(r.counts)
	for _, n := range r.counts {
		if n > 1 {
			inv.Duplicates += n - 1
		}
	}
	missing := r.missingLocked()
	if len(missing) > 20 {
		missing = missing[:20]
	}
	inv.Missing = missing
	inv.RingOverrun = r.overrun
	r.mu.Unlock()

	inv.Demotions = r.f.scrapeMetric("diffusion_discovery_demotions")
	inv.DemotionsBound = uint64(r.camp.DemotionsPerNode * float64(r.f.cfg.N))
	inv.CleanExits = r.f.teardownGraceful()
	inv.OK = len(inv.Missing) == 0 && inv.Duplicates == 0 && !inv.RingOverrun &&
		inv.Demotions <= inv.DemotionsBound
	fmt.Fprintf(r.f.cfg.Logw,
		"difffleet: invariants: sent %d delivered %d dup %d missing %d demotions %d/%d ok=%v\n",
		inv.Sent, inv.Delivered, inv.Duplicates, len(inv.Missing),
		inv.Demotions, inv.DemotionsBound, inv.OK)
}
