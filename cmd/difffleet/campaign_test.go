package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

// TestCampaignParse pins the campaign-file contract: defaults fill in,
// every verb validates its own knobs, and unknown fields or verbs are
// rejected loudly instead of weakening the campaign silently.
// TestSampleCampaignParses pins the checked-in walkthrough campaign
// (testdata/campaign.json, quoted in the README) to the schema: a field
// rename or verb change that would orphan the docs fails here first.
func TestSampleCampaignParses(t *testing.T) {
	raw, err := os.ReadFile("testdata/campaign.json")
	if err != nil {
		t.Fatal(err)
	}
	c, err := parseCampaign(raw)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "sample" || len(c.Phases) != 7 {
		t.Fatalf("unexpected sample campaign: name %q, %d phases", c.Name, len(c.Phases))
	}
}

func TestCampaignParse(t *testing.T) {
	c, err := parseCampaign([]byte(`{
		"name": "pr-gate",
		"phases": [
			{"verb": "partition", "hold": "10s"},
			{"verb": "partition", "mode": "islands", "hold": "5s", "heal": false},
			{"verb": "loss", "level": 0.3, "hold": "5s"},
			{"verb": "custody-split", "hold": "20s"},
			{"verb": "kill", "target": "seed", "restart": true},
			{"verb": "rolling-restart", "count": 10},
			{"verb": "heal"},
			{"verb": "sleep", "hold": 1500}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.StreamInterval.Duration != 250*time.Millisecond {
		t.Errorf("stream_interval default = %v", c.StreamInterval)
	}
	if c.ReconvergeWithin.Duration != 2*time.Minute || c.DrainTimeout.Duration != 2*time.Minute {
		t.Errorf("verification defaults = %v/%v", c.ReconvergeWithin, c.DrainTimeout)
	}
	if c.DemotionsPerNode != 50 {
		t.Errorf("demotions_per_node default = %v", c.DemotionsPerNode)
	}
	if got := c.Phases[0]; got.Mode != "bisect" || got.Name != "phase-1" {
		t.Errorf("partition defaults = %+v", got)
	}
	if got := c.Phases[1]; got.Islands != 3 || got.Heal == nil || *got.Heal {
		t.Errorf("islands defaults = %+v", got)
	}
	if got := c.Phases[2]; got.RampSteps != 3 || got.RampHold.Duration != time.Second {
		t.Errorf("loss defaults = %+v", got)
	}
	if got := c.Phases[3]; got.KillWait.Duration != 2*time.Second {
		t.Errorf("custody-split defaults = %+v", got)
	}
	if got := c.Phases[5]; got.Batch != 5 || got.Pause.Duration != 2*time.Second {
		t.Errorf("rolling-restart defaults = %+v", got)
	}
	if got := c.Phases[7]; got.Hold.Duration != 1500*time.Millisecond {
		t.Errorf("numeric duration = %v, want 1.5s", got.Hold)
	}

	for _, tc := range []struct{ name, body, want string }{
		{"empty", `{"phases": []}`, "no phases"},
		{"unknown verb", `{"phases": [{"verb": "meteor"}]}`, `unknown verb "meteor"`},
		{"unknown field", `{"phases": [{"verb": "heal", "bogus": 1}]}`, "unknown field"},
		{"bad mode", `{"phases": [{"verb": "partition", "mode": "trisect", "hold": "1s"}]}`, "unknown partition mode"},
		{"one island", `{"phases": [{"verb": "partition", "mode": "islands", "islands": 1, "hold": "1s"}]}`, "islands must be >= 2"},
		{"partition no hold", `{"phases": [{"verb": "partition"}]}`, "needs a hold"},
		{"loss too high", `{"phases": [{"verb": "loss", "level": 1.0}]}`, "outside [0,1)"},
		{"split no hold", `{"phases": [{"verb": "custody-split"}]}`, "needs a hold"},
		{"kill no target", `{"phases": [{"verb": "kill"}]}`, "needs a target"},
		{"sleep no hold", `{"phases": [{"verb": "sleep"}]}`, "needs a hold"},
	} {
		if _, err := parseCampaign([]byte(tc.body)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestCampaignExitCode pins the exit-code contract documented in the
// difffleet doc comment: CI distinguishes "rerun me" (1) from "the
// protocol broke" (2).
func TestCampaignExitCode(t *testing.T) {
	okV := &campaignVerdict{OK: true}
	badV := &campaignVerdict{OK: false}
	infraErr := os.ErrNotExist
	for _, tc := range []struct {
		name string
		v    *campaignVerdict
		err  error
		want int
	}{
		{"all held", okV, nil, exitOK},
		{"violation", badV, nil, exitInvariant},
		{"violation trumps late error", badV, infraErr, exitInvariant},
		{"infra error with clean verdict", okV, infraErr, exitInfra},
		{"no verdict", nil, infraErr, exitInfra},
		{"no verdict, no error", nil, nil, exitInfra},
	} {
		if got := exitCode(tc.v, tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCampaignVerdictSchema pins the JSON verdict schema byte-for-byte.
// Operators and CI parse this document; a field rename or type change
// must show up as a deliberate golden update in review, not as a silent
// drift.
func TestCampaignVerdictSchema(t *testing.T) {
	v := campaignVerdict{
		Campaign:   "pr-gate",
		N:          100,
		ConvergeMS: 41250,
		Sink:       97,
		Source:     96,
		Phases: []phaseVerdict{{
			Name: "split", Verb: "partition", StartMS: 1000, DurationMS: 25000,
			ReconvergeMS: 9000, Detail: "bisect 50|50", OK: true,
		}, {
			Name: "storm", Verb: "loss", StartMS: 26000, DurationMS: 12000,
			OK: false, Error: "no deliveries during 8s at 30% loss",
		}},
		Invariants: invariantReport{
			Sent: 900, Delivered: 899, Duplicates: 1, Missing: []int{17},
			RingOverrun: true, Demotions: 210, DemotionsBound: 5000,
			CleanExits: 100, OK: false,
		},
		OK: false,
	}
	got, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
 "campaign": "pr-gate",
 "n": 100,
 "converge_ms": 41250,
 "sink": 97,
 "source": 96,
 "phases": [
  {
   "name": "split",
   "verb": "partition",
   "start_ms": 1000,
   "duration_ms": 25000,
   "reconverge_ms": 9000,
   "detail": "bisect 50|50",
   "ok": true
  },
  {
   "name": "storm",
   "verb": "loss",
   "start_ms": 26000,
   "duration_ms": 12000,
   "ok": false,
   "error": "no deliveries during 8s at 30% loss"
  }
 ],
 "invariants": {
  "sent": 900,
  "delivered": 899,
  "duplicates": 1,
  "missing": [
   17
  ],
  "ring_overrun": true,
  "demotions": 210,
  "demotions_bound": 5000,
  "clean_exits": 100,
  "ok": false
 },
 "ok": false
}`
	if string(got) != want {
		t.Errorf("verdict schema drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// runCampaignTest executes a campaign and requires a clean verdict.
func runCampaignTest(t *testing.T, cfg fleetConfig, campaignJSON string) *campaignVerdict {
	t.Helper()
	camp, err := parseCampaign([]byte(campaignJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logw = testWriter{t}
	v, err := runCampaign(cfg, camp)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := json.MarshalIndent(v, "", "  ")
	t.Logf("campaign verdict:\n%s", out)
	for _, pv := range v.Phases {
		if !pv.OK {
			t.Errorf("phase %q (%s) failed: %s", pv.Name, pv.Verb, pv.Error)
		}
	}
	inv := v.Invariants
	if !inv.OK {
		t.Errorf("invariants violated: delivered %d/%d, dup %d, missing %v, overrun %v, demotions %d/%d",
			inv.Delivered, inv.Sent, inv.Duplicates, inv.Missing, inv.RingOverrun,
			inv.Demotions, inv.DemotionsBound)
	}
	if inv.Sent == 0 {
		t.Error("campaign sent no events; the stream never ran")
	}
	if !v.OK {
		t.Error("campaign verdict not OK")
	}
	return v
}

// TestFleetCampaignSmall is the everyday-CI chaos campaign: 10 durable
// nodes, one pass through every fault verb — bisect partition with
// heal, mesh-wide loss, a custody split with a custodian kill and warm
// restart, a seed kill with warm restart on its pinned port, and a
// rolling restart — with zero loss, zero duplicates, census
// re-convergence after every heal, and bounded demotion churn.
func TestFleetCampaignSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process campaign test skipped in -short mode")
	}
	runCampaignTest(t, fleetConfig{
		N:               10,
		Dir:             t.TempDir(),
		NodeLogs:        true,
		ConvergeTimeout: time.Minute,
	}, `{
		"name": "small-all-verbs",
		"stream_interval": "200ms",
		"phases": [
			{"name": "bisect",  "verb": "partition", "hold": "4s"},
			{"name": "drizzle", "verb": "loss", "level": 0.3, "hold": "3s", "ramp_hold": "500ms"},
			{"name": "split",   "verb": "custody-split", "hold": "6s", "kill_wait": "1s"},
			{"name": "regicide","verb": "kill", "target": "seed", "restart": true, "kill_wait": "1s", "hold": "2s"},
			{"name": "upgrade", "verb": "rolling-restart", "batch": 3, "count": 3, "pause": "1s"},
			{"name": "settle",  "verb": "heal"}
		]
	}`)
}

// TestFleetChaosCampaign is the 100-node acceptance campaign, gated
// behind DIFFUSION_FLEET=1 like TestFleetConvergence: a bisect
// partition held past the failure detector and healed, a mesh-wide
// loss ramp to 25%, a custody split that isolates the sink well past
// the soft-state horizon while the custodian is SIGKILLed and
// warm-restarted from its journal, and a rolling restart of ten nodes
// in batches of five. The campaign-end invariants — zero
// loss, zero duplicates, census re-convergence, bounded demotions —
// are the fleet-scale robustness acceptance criteria. The demotion
// bound is looser than the default: three partition-heal cycles of a
// 100-node mesh each legitimately demote several cross-cut peers per
// node (measured ~130/node for this schedule under the race detector),
// so 300/node leaves fault headroom while still catching the unbounded
// courtship churn the bound exists for.
func TestFleetChaosCampaign(t *testing.T) {
	if os.Getenv("DIFFUSION_FLEET") != "1" {
		t.Skip("100-node campaign skipped (set DIFFUSION_FLEET=1)")
	}
	runCampaignTest(t, fleetConfig{
		N:        100,
		Dir:      t.TempDir(),
		NodeLogs: true,
		// Same scheduler-aware timer stretch as TestFleetConvergence: a
		// hundred race-built processes must be limited by the protocol,
		// not by run-queue latency.
		AnnounceInterval:    300 * time.Millisecond,
		Heartbeat:           750 * time.Millisecond,
		SuspectAfter:        3 * time.Second,
		DeadAfter:           8 * time.Second,
		InterestInterval:    2 * time.Second,
		ExploratoryInterval: 5 * time.Second,
		ConvergeTimeout:     5 * time.Minute,
	}, `{
		"name": "fleet-acceptance",
		"stream_interval": "500ms",
		"reconverge_within": "4m",
		"drain_timeout": "4m",
		"demotions_per_node": 300,
		"phases": [
			{"name": "bisect",    "verb": "partition", "hold": "15s"},
			{"name": "loss-ramp", "verb": "loss", "level": 0.25, "hold": "10s", "ramp_hold": "2s"},
			{"name": "split",     "verb": "custody-split", "hold": "20s", "kill_wait": "3s"},
			{"name": "upgrade",   "verb": "rolling-restart", "count": 10, "batch": 5, "pause": "2s"}
		]
	}`)
}

// BenchmarkFleetCampaign boots a 5-node durable fleet and runs a
// minimal partition+heal campaign per iteration. The CI bench guard's
// single iteration catches campaign-engine regressions that crash or
// wedge; stable timings live in BENCH_fleetchaos.json.
func BenchmarkFleetCampaign(b *testing.B) {
	camp, err := parseCampaign([]byte(`{
		"name": "bench",
		"stream_interval": "100ms",
		"phases": [{"verb": "partition", "hold": "1500ms"}]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		v, err := runCampaign(fleetConfig{
			N:               5,
			Dir:             b.TempDir(),
			ConvergeTimeout: time.Minute,
		}, camp)
		if err != nil {
			b.Fatal(err)
		}
		if !v.OK {
			out, _ := json.Marshal(v)
			b.Fatalf("campaign verdict not OK: %s", out)
		}
		b.ReportMetric(float64(v.ConvergeMS), "converge-ms/op")
		b.ReportMetric(float64(v.Phases[0].ReconvergeMS), "reconverge-ms/op")
	}
}
