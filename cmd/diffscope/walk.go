package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Mesh walking: with -walk, diffscope needs only one entry point. Every
// diffnode serves GET /neighbors, and — when discovery is on — each row
// carries the peer's control-plane address learned from its announces, so
// a breadth-first walk from a single seed enumerates the whole connected
// mesh. The walked set then feeds the span scrape, replacing the
// hand-maintained node list.

// walkLimit bounds a walk so a malformed mesh (or a mesh of forged
// announces) cannot make the tool crawl forever.
const walkLimit = 1024

// meshNode is one node's /neighbors envelope as seen during a walk.
type meshNode struct {
	Addr      string
	ID        uint32 `json:"id"`
	Boot      uint32 `json:"boot"`
	Degree    int    `json:"degree"`
	Cap       int    `json:"cap"`
	Discovery bool   `json:"discovery"`
	Neighbors []struct {
		ID     uint32  `json:"id"`
		HTTP   string  `json:"http"`
		Member string  `json:"member"`
		Peered bool    `json:"peered"`
		Origin string  `json:"origin"`
		Boot   *uint32 `json:"boot"` // the peer's incarnation; nil before its first full announce
	} `json:"neighbors"`
}

// walkMesh BFS-walks GET /neighbors from the entry addresses and returns
// every reachable node. Entry-point failures are fatal (the operator gave
// a bad address); failures on walked nodes are skipped with a notice —
// a node can die mid-walk, and one corpse must not abort the census.
func walkMesh(w io.Writer, client *http.Client, entries []string) ([]meshNode, error) {
	var nodes []meshNode
	seen := map[string]bool{}
	queue := make([]string, 0, len(entries))
	for _, a := range entries {
		if !seen[a] {
			seen[a] = true
			queue = append(queue, a)
		}
	}
	entrySet := len(queue)
	for i := 0; i < len(queue) && len(nodes) < walkLimit; i++ {
		addr := queue[i]
		n, err := fetchNeighbors(client, addr)
		if err != nil {
			if i < entrySet {
				return nil, fmt.Errorf("walk entry %s: %w", addr, err)
			}
			fmt.Fprintf(w, "diffscope: walk: skipping %s: %v\n", addr, err)
			continue
		}
		nodes = append(nodes, n)
		for _, nb := range n.Neighbors {
			if nb.HTTP != "" && !seen[nb.HTTP] {
				seen[nb.HTTP] = true
				queue = append(queue, nb.HTTP)
			}
		}
	}
	if len(queue) > walkLimit {
		fmt.Fprintf(w, "diffscope: walk: stopped at %d nodes (limit)\n", walkLimit)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes, nil
}

// fetchNeighbors fetches and decodes one node's GET /neighbors.
func fetchNeighbors(client *http.Client, addr string) (meshNode, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/neighbors")
	if err != nil {
		return meshNode{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return meshNode{}, fmt.Errorf("GET /neighbors: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var n meshNode
	if err := json.NewDecoder(resp.Body).Decode(&n); err != nil {
		return meshNode{}, err
	}
	n.Addr = addr
	return n, nil
}

// walkReport prints the membership census: one line per node with its
// degree against the cap and a tally of neighbor rows by membership.
func walkReport(w io.Writer, nodes []meshNode) {
	fmt.Fprintf(w, "diffscope: walked %d nodes\n", len(nodes))
	for _, n := range nodes {
		tally := map[string]int{}
		for _, nb := range n.Neighbors {
			tally[nb.Member]++
		}
		parts := make([]string, 0, len(tally))
		for _, state := range []string{"neighbor", "candidate", "quarantined", "left", "dead"} {
			if tally[state] > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", tally[state], state))
			}
		}
		mode := "static"
		if n.Discovery {
			mode = "discovery"
		}
		fmt.Fprintf(w, "  node %d (%s): %s, boot %08x, degree %d/%d, peers: %s\n",
			n.ID, n.Addr, mode, n.Boot, n.Degree, n.Cap, strings.Join(parts, ", "))
	}
}
