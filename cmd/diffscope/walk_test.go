package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// meshServer serves a canned GET /neighbors view. The neighbor HTTP
// addresses are filled in lazily (via the addr map) because httptest
// assigns ports only at start.
func meshServer(t *testing.T, id uint32, discovery bool, peers func() []map[string]any) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/neighbors" {
			http.NotFound(w, r)
			return
		}
		rows := peers()
		degree := 0
		for _, row := range rows {
			if row["member"] == "neighbor" {
				degree++
			}
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id": id, "boot": 1, "degree": degree, "cap": 8,
			"discovery": discovery, "neighbors": rows,
		})
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestWalkMesh walks a 3-node mesh from a single entry point: the entry
// knows only node 2, node 2 knows node 3, and the walk must find all
// three, skip a dead address gracefully, and dedupe the back-links.
func TestWalkMesh(t *testing.T) {
	addr := map[uint32]string{}
	row := func(id uint32, member string) map[string]any {
		return map[string]any{"id": id, "http": addr[id], "member": member,
			"peered": true, "origin": "discovered"}
	}
	s1 := meshServer(t, 1, true, func() []map[string]any {
		return []map[string]any{row(2, "neighbor")}
	})
	s2 := meshServer(t, 2, true, func() []map[string]any {
		// A back-link to 1, a live link to 3, and a dead peer whose
		// address no longer answers.
		return []map[string]any{row(1, "neighbor"), row(3, "neighbor"),
			{"id": 9, "http": "127.0.0.1:1", "member": "dead", "origin": "discovered"}}
	})
	s3 := meshServer(t, 3, true, func() []map[string]any {
		return []map[string]any{row(2, "neighbor")}
	})
	for id, s := range map[uint32]*httptest.Server{1: s1, 2: s2, 3: s3} {
		addr[id] = strings.TrimPrefix(s.URL, "http://")
	}

	var out bytes.Buffer
	nodes, err := walkMesh(&out, http.DefaultClient, []string{addr[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 {
		t.Fatalf("walked %d nodes, want 3: %+v", len(nodes), nodes)
	}
	for i, want := range []uint32{1, 2, 3} {
		if nodes[i].ID != want {
			t.Errorf("nodes[%d].ID = %d, want %d", i, nodes[i].ID, want)
		}
	}
	if !strings.Contains(out.String(), "skipping 127.0.0.1:1") {
		t.Errorf("dead peer not reported: %q", out.String())
	}

	// A bad entry point is fatal — the operator typo'd the address.
	if _, err := walkMesh(&out, http.DefaultClient, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("bad entry point: want error")
	}
}

// TestRunWalk drives run() end to end with -walk: the census prints for
// every discovered node, and nodes without tracing are skipped rather
// than failing the scrape.
func TestRunWalk(t *testing.T) {
	addr := map[uint32]string{}
	row := func(id uint32) map[string]any {
		return map[string]any{"id": id, "http": addr[id], "member": "neighbor",
			"peered": true, "origin": "discovered"}
	}
	s1 := meshServer(t, 1, true, func() []map[string]any { return []map[string]any{row(2)} })
	s2 := meshServer(t, 2, true, func() []map[string]any { return []map[string]any{row(1)} })
	addr[1] = strings.TrimPrefix(s1.URL, "http://")
	addr[2] = strings.TrimPrefix(s2.URL, "http://")

	var out bytes.Buffer
	if err := run(&out, []string{"-walk", addr[1]}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"walked 2 nodes", "node 1 (", "node 2 (",
		"degree 1/8", "no flight-path spans scraped"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
