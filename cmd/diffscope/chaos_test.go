package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diffusion/internal/chaos"
)

// TestChaosFlightPathReconstruction is the live acceptance test for
// cluster-wide flight-path tracing: a 5-process line 1(sink)-2-3-4-5
// (source) over loopback UDP with -trace-sample 1, scraped by the
// diffscope merger (run() in-process). Before any fault, the merged
// report must reconstruct a complete source→sink flight path — every
// relay hop annotated with its latency — plus end-to-end percentiles.
// Then the reinforced relay (node 3) is SIGKILLed while the source keeps
// sending; once its neighbors' failure detectors purge the gradients
// toward it, the next flows die at node 4 for lack of an onward path,
// and a scrape of the four survivors must localize the drop there.
//
// Gated behind DIFFUSION_CHAOS=1 like the diffnode chaos suite: real
// processes, real timers, tens of seconds.
func TestChaosFlightPathReconstruction(t *testing.T) {
	if os.Getenv("DIFFUSION_CHAOS") != "1" {
		t.Skip("set DIFFUSION_CHAOS=1 to run the live flight-path test")
	}
	if testing.Short() {
		t.Skip("live flight-path test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "diffnode")
	if out, err := exec.Command("go", "build", "-o", bin, "diffusion/cmd/diffnode").CombinedOutput(); err != nil {
		t.Fatalf("go build diffnode: %v\n%s", err, out)
	}

	const n = 5
	udp := freePorts(t, n, "udp")
	httpPorts := freePorts(t, n, "tcp")

	// Line topology 1(sink)-2-3-4-5(source). The interest interval is a
	// full second (gradient lifetime 2.5s): after the relay dies, its
	// upstream neighbor purges gradients at dead-after (~600ms) while the
	// source's own gradient stays fresh long enough to keep forwarding —
	// the window in which flows observably die at node 4.
	procs := make([]*chaos.Proc, n)
	logs := make([]*syncBuffer, n)
	for i := 0; i < n; i++ {
		id := i + 1
		var nb []string
		if i > 0 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id-1, udp[i-1]))
		}
		if i < n-1 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id+1, udp[i+1]))
		}
		logs[i] = &syncBuffer{}
		p, err := chaos.Start(chaos.ProcSpec{
			ID:   uint32(id),
			HTTP: fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
			Log:  logs[i],
			Argv: []string{bin,
				"-id", fmt.Sprint(id),
				"-listen", fmt.Sprintf("127.0.0.1:%d", udp[i]),
				"-http", fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
				"-neighbors", strings.Join(nb, ","),
				"-interest-interval", "1s",
				"-exploratory-interval", "2s",
				"-forward-jitter", "10ms",
				"-heartbeat", "100ms",
				"-suspect-after", "300ms",
				"-dead-after", "600ms",
				"-reliable",
				"-trace-sample", "1",
				"-drain", "200ms",
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() {
			if p.Alive() {
				p.Kill()
			}
		})
	}
	for i, p := range procs {
		if err := p.WaitHealthy(10 * time.Second); err != nil {
			t.Fatalf("%v\n%s", err, logs[i].String())
		}
	}
	sink, relay, source := procs[0], procs[2], procs[4]
	addrs := make([]string, n)
	for i, p := range procs {
		addrs[i] = p.HTTPAddr()
	}

	// Workload: sink subscribes, source publishes and streams events.
	ctrl(t, sink, "/subscribe", "type EQ four-legged-animal-search, interval IS 1")
	pubResp := ctrl(t, source, "/publish", "type IS four-legged-animal-search")
	pub := int(pubResp["handle"].(float64))

	var seq atomic.Int64
	send := func() {
		resp, err := http.Post("http://"+source.HTTPAddr()+"/send", "text/plain",
			strings.NewReader(fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d"}`, pub, seq.Add(1))))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	delivered := func() float64 {
		total, _ := ctrl(t, sink, "/deliveries", "")["total"].(float64)
		return total
	}
	for delivered() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("no steady delivery before the fault\n%s", logs[0].String())
		}
		send()
		time.Sleep(100 * time.Millisecond)
	}

	// --- Healthy-cluster scrape: complete path, per-hop latencies. ---
	var buf bytes.Buffer
	if err := run(&buf, addrs); err != nil {
		t.Fatalf("diffscope (healthy): %v", err)
	}
	out := buf.String()
	t.Logf("healthy-cluster report:\n%s", out)
	fullPath := regexp.MustCompile(
		`n5 -\([^)]+\)-> n4 -\([^)]+\)-> n3 -\([^)]+\)-> n2 -\([^)]+\)-> n1`)
	if !fullPath.MatchString(out) {
		t.Errorf("no complete source→sink path with per-hop latencies in report:\n%s", out)
	}
	for _, want := range []string{"diffscope: 5 nodes", "delivered at node 1", "per-hop", "end-to-end", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("healthy report missing %q:\n%s", want, out)
		}
	}

	// --- Kill the reinforced relay; keep the source sending. ---
	if err := relay.Kill(); err != nil {
		t.Fatal(err)
	}
	// Node 4 notices the death (its log dumps the flight ring) and purges
	// the gradients toward node 3.
	purged := func() bool {
		return strings.Contains(logs[3].String(), "flight dump (neighbor 3 died)")
	}
	for start := time.Now(); !purged(); {
		if time.Since(start) > 10*time.Second {
			t.Fatalf("node 4 never detected the relay's death\n%s", logs[3].String())
		}
		send()
		time.Sleep(100 * time.Millisecond)
	}
	// Flows sent now reach node 4 (the source's gradient is still fresh)
	// and die there: no gradient points onward. Send for a moment, then
	// let the last spans land.
	for i := 0; i < 10; i++ {
		send()
		time.Sleep(100 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)

	// --- Survivor scrape: the drop is localized at node 4. ---
	survivors := []string{addrs[0], addrs[1], addrs[3], addrs[4]}
	buf.Reset()
	if err := run(&buf, survivors); err != nil {
		t.Fatalf("diffscope (survivors): %v", err)
	}
	out = buf.String()
	t.Logf("survivor report:\n%s", out)
	// The interest entry at node 4 survives the death — only the gradient
	// toward node 3 was purged — so the flows die one hop in with
	// "no-path", and no custodian holds them.
	if !strings.Contains(out, "died at node 4 (hop 1): no-path, custody not enabled") {
		t.Errorf("drop not localized at node 4 with a no-path verdict:\n%s", out)
	}
	if !strings.Contains(out, "undelivered flows:") {
		t.Errorf("report missing undelivered section:\n%s", out)
	}

	// Clean shutdown of the survivors.
	for i, p := range procs {
		if !p.Alive() {
			continue
		}
		if err := p.Terminate(15 * time.Second); err != nil {
			t.Errorf("%v\n%s", err, logs[i].String())
		}
	}
}

// ctrl issues one control-plane call and decodes the JSON reply; GET
// when body is empty, POST otherwise.
func ctrl(t *testing.T, p *chaos.Proc, path, body string) map[string]any {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	if body == "" {
		resp, err = http.Get("http://" + p.HTTPAddr() + path)
	} else {
		resp, err = http.Post("http://"+p.HTTPAddr()+path, "text/plain", strings.NewReader(body))
	}
	if err != nil {
		t.Fatalf("node %d %s: %v", p.ID(), path, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node %d %s: %d %s", p.ID(), path, resp.StatusCode, raw)
	}
	var v map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("node %d %s: bad JSON %q: %v", p.ID(), path, raw, err)
		}
	}
	return v
}

// freePorts reserves n distinct loopback ports of the given kind.
func freePorts(t *testing.T, n int, kind string) []int {
	t.Helper()
	ports, err := chaos.FreePorts(kind, n)
	if err != nil {
		t.Fatal(err)
	}
	return ports
}

// syncBuffer is a mutex-guarded log sink for child process output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
