// Command diffscope follows messages across a live diffusion cluster: it
// scrapes every node's flight-path span ring (diffnode's GET /spans,
// enabled with -trace-sample), rebases each node's spans onto a common
// wall-clock base, and merges them into causal flight paths — the live
// counterpart of `difftrace paths` for a simulator trace. The paper's
// section 7 laments "the difficulty in understanding what was going on in
// a network of dozens of physically distributed nodes"; this is the tool
// that answers "where exactly did flow 7 die?" on a running mesh.
//
// Usage:
//
//	diffscope [-walk] [-flow F] [-o merged.jsonl] host:port [host:port ...]
//
// Each argument is a diffnode control-plane address. With -walk the
// arguments are entry points only: diffscope breadth-first walks each
// node's GET /neighbors membership view — following the control-plane
// addresses that discovery announces carry — prints a membership census,
// and scrapes every node it found. The report lists
// every sampled flow's relay chain with per-hop latencies, per-hop and
// end-to-end latency percentiles, the time-ordered reinforcement-path
// evolution, and a drop-localization verdict per undelivered flow.
// -flow prints one flow's merged event timeline instead; -o additionally
// writes the merged spans as a difftrace-compatible JSONL trace.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"diffusion/internal/flightpath"
	"diffusion/internal/telemetry"
)

const usage = "usage: diffscope [-walk] [-flow F] [-o merged.jsonl] host:port [host:port ...]"

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diffscope:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("diffscope", flag.ContinueOnError)
	flowHex := fs.String("flow", "", "print one flow's merged event timeline (hex flow ID as listed)")
	out := fs.String("o", "", "also write the merged spans as a JSONL trace")
	walk := fs.Bool("walk", false, "treat the addresses as entry points and walk GET /neighbors to find the whole mesh")
	timeout := fs.Duration("timeout", 5*time.Second, "per-node scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	flowID, err := parseFlowID(*flowHex)
	if err != nil {
		return err
	}
	addrs := fs.Args()
	if len(addrs) == 0 {
		return errors.New(usage)
	}

	client := &http.Client{Timeout: *timeout}
	if *walk {
		nodes, err := walkMesh(w, client, addrs)
		if err != nil {
			return err
		}
		if len(nodes) == 0 {
			return errors.New("walk found no nodes")
		}
		walkReport(w, nodes)
		addrs = addrs[:0]
		for _, n := range nodes {
			addrs = append(addrs, n.Addr)
		}
	}

	scrapes := make([]scrape, 0, len(addrs))
	for _, addr := range addrs {
		s, err := scrapeNode(client, addr)
		if err != nil {
			// On a walked mesh tracing may simply be off (or a node died
			// between census and scrape): report and move on. An explicit
			// node list keeps the hard error.
			if *walk {
				fmt.Fprintf(w, "diffscope: scrape %s: %v\n", addr, err)
				continue
			}
			return fmt.Errorf("scrape %s: %w", addr, err)
		}
		scrapes = append(scrapes, s)
	}
	recs := merge(scrapes)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		info := telemetry.RunInfo{Topology: "live-scrape", Nodes: len(scrapes)}
		if err := telemetry.WriteJSONL(f, info, recs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	flows := flightpath.Assemble(recs)
	fmt.Fprintf(w, "diffscope: %d nodes, %d spans, %d flows\n", len(scrapes), len(recs), len(flows))
	for _, s := range scrapes {
		fmt.Fprintf(w, "  node %d (%s): %d spans, boot %08x\n", s.node, s.addr, len(s.recs), s.boot)
	}
	if len(flows) == 0 {
		fmt.Fprintln(w, "no flight-path spans scraped (start nodes with -trace-sample > 0)")
		return nil
	}
	if flowID != 0 {
		return flowTimeline(w, flows, flowID)
	}
	report(w, flows)
	return nil
}

// scrape is one node's /spans response: identity, boot nonce, and its
// records rebased onto absolute microseconds (unix time).
type scrape struct {
	addr string
	node uint32
	boot uint32
	recs []telemetry.Record
}

// scrapeNode fetches and parses one node's span ring. The first JSONL
// line is the header carrying the node ID, boot nonce and the absolute
// base of the ring's clock; every following line is one span record with
// us relative to that base.
func scrapeNode(client *http.Client, addr string) (scrape, error) {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	resp, err := client.Get(url + "/spans")
	if err != nil {
		return scrape{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return scrape{}, fmt.Errorf("GET /spans: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return scrape{}, errors.New("empty /spans response")
	}
	var hdr struct {
		Node        uint32 `json:"node"`
		Boot        uint32 `json:"boot"`
		StartUnixUS int64  `json:"start_unix_us"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return scrape{}, fmt.Errorf("header line: %w", err)
	}
	s := scrape{addr: addr, node: hdr.Node, boot: hdr.Boot}
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec telemetry.Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return scrape{}, fmt.Errorf("span line: %w", err)
		}
		rec.US += hdr.StartUnixUS // rebase onto wall time
		s.recs = append(s.recs, rec)
	}
	return s, sc.Err()
}

// merge flattens the scrapes onto one timeline, rebased so the earliest
// span is time zero, stably ordered by time with ties in scrape order.
func merge(scrapes []scrape) []telemetry.Record {
	var out []telemetry.Record
	for _, s := range scrapes {
		out = append(out, s.recs...)
	}
	if len(out) == 0 {
		return nil
	}
	min := out[0].US
	for _, r := range out {
		if r.US < min {
			min = r.US
		}
	}
	for i := range out {
		out[i].US -= min
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].US < out[j].US })
	return out
}

// parseFlowID parses a 16-bit flow ID in the hex spelling the reports
// use; empty means no flow selected.
func parseFlowID(s string) (uint16, error) {
	if s == "" {
		return 0, nil
	}
	s = strings.TrimPrefix(s, "0x")
	v, err := strconv.ParseUint(s, 16, 16)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("bad flow ID %q: want the 4-digit hex ID from the listing", s)
	}
	return uint16(v), nil
}

// report prints the full cluster view: flight paths with per-hop
// latencies, latency percentiles, reinforcement evolution, and drop
// verdicts.
func report(w io.Writer, flows []*flightpath.Flow) {
	delivered, dropped := 0, 0
	for _, f := range flows {
		if f.Delivered {
			delivered++
		} else if f.Dropped {
			dropped++
		}
	}
	fmt.Fprintf(w, "flight paths (%d delivered, %d dropped):\n", delivered, dropped)
	for _, f := range flows {
		fmt.Fprintf(w, "  %04x %-18s %s\n", f.Flow, f.Class, annotatedPath(f))
		fmt.Fprintf(w, "       %s\n", flightpath.Localize(f))
	}

	line := func(name string, samples []int64) {
		if len(samples) == 0 {
			fmt.Fprintf(w, "  %-10s (no samples)\n", name)
			return
		}
		fmt.Fprintf(w, "  %-10s n=%-6d p50=%-10v p90=%-10v p99=%-10v max=%v\n", name, len(samples),
			time.Duration(flightpath.Percentile(samples, 50))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 90))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 99))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 100))*time.Microsecond)
	}
	fmt.Fprintln(w, "latency:")
	line("per-hop", flightpath.PerHopLatencies(flows))
	line("end-to-end", flightpath.E2ELatencies(flows))

	// Reinforcement-path evolution: every reinforcement sighting across
	// every flow, in time order — the gradient field being sharpened (and
	// pruned) as the run progresses.
	type evoEvent struct {
		us   int64
		flow uint16
		e    flightpath.Edge
	}
	var evo []evoEvent
	for _, f := range flows {
		for _, e := range f.Reinforcements {
			evo = append(evo, evoEvent{e.US, f.Flow, e})
		}
	}
	sort.SliceStable(evo, func(i, j int) bool { return evo[i].us < evo[j].us })
	if len(evo) > 0 {
		fmt.Fprintln(w, "reinforcement-path evolution:")
		for _, ev := range evo {
			sign := "positive"
			if ev.e.Negative {
				sign = "negative"
			}
			fmt.Fprintf(w, "  +%-12v flow %04x %s %s at node %d\n",
				time.Duration(ev.us)*time.Microsecond, ev.flow, sign, ev.e.Verb, ev.e.Node)
		}
	}

	printed := false
	for _, f := range flows {
		if f.Delivered {
			continue
		}
		if !printed {
			fmt.Fprintln(w, "undelivered flows:")
			printed = true
		}
		fmt.Fprintf(w, "  %s\n", flightpath.Localize(f))
	}
}

// annotatedPath renders the relay chain with each hop's latency inline:
// "n5 -(1.2ms)-> n4 -(950µs)-> n3".
func annotatedPath(f *flightpath.Flow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d", f.Origin)
	for _, h := range f.Hops {
		switch {
		case h.RxUS >= 0 && h.LatencyUS() >= 0:
			fmt.Fprintf(&b, " -(%v)-> n%d", time.Duration(h.LatencyUS())*time.Microsecond, h.RxNode)
		case h.RxUS >= 0:
			fmt.Fprintf(&b, " -> n%d", h.RxNode)
		case h.TxUS >= 0:
			b.WriteString(" -> ?")
		}
	}
	return b.String()
}

// flowTimeline prints one flow's merged cross-node event sequence.
func flowTimeline(w io.Writer, flows []*flightpath.Flow, flowID uint16) error {
	for _, f := range flows {
		if f.Flow != flowID {
			continue
		}
		fmt.Fprintf(w, "flow %04x %s id=%s %s\n", f.Flow, f.Class, f.ID, annotatedPath(f))
		for _, r := range f.Events {
			fmt.Fprintf(w, "  +%-12v node=%-4d %-9s %-9s hops=%d",
				time.Duration(r.US-f.StartUS)*time.Microsecond, r.Node, r.Layer, r.Verb, r.Hops)
			if r.Cause != "" {
				fmt.Fprintf(w, " cause=%s", r.Cause)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "  %s\n", flightpath.Localize(f))
		return nil
	}
	return fmt.Errorf("no spans for flow %04x", flowID)
}
