package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diffusion/internal/telemetry"
)

// spanServer serves a canned diffnode /spans response: the header line
// followed by one record per line, with us relative to startUnixUS.
func spanServer(t *testing.T, node, boot uint32, startUnixUS int64, recs []telemetry.Record) *httptest.Server {
	t.Helper()
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"node":%d,"boot":%d,"start_unix_us":%d,"spans":%d}`+"\n", node, boot, startUnixUS, len(recs))
	for _, r := range recs {
		fmt.Fprintf(&b, `{"us":%d,"node":%d,"layer":%q,"verb":%q`, r.US, r.Node, r.Layer, r.Verb)
		if r.Class != "" {
			fmt.Fprintf(&b, `,"class":%q`, r.Class)
		}
		if r.Cause != "" {
			fmt.Fprintf(&b, `,"cause":%q`, r.Cause)
		}
		fmt.Fprintf(&b, `,"hops":%d,"flow":%d}`+"\n", r.Hops, r.Flow)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/spans" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		w.Write(b.Bytes())
	}))
	t.Cleanup(srv.Close)
	return srv
}

// clusterServers models a 3-node chain 3 -> 2 -> 1 that delivers flow
// 0x0007 and drops flow 0x0009 at node 2 for lack of a gradient. Each
// node's clock has a different wall base to exercise rebasing.
func clusterServers(t *testing.T) []string {
	t.Helper()
	const cls = "EXPLORATORY_DATA"
	n3 := spanServer(t, 3, 0xaa, 1_000_000, []telemetry.Record{
		{US: 100, Node: 3, Layer: "core", Verb: "enqueue", Class: cls, Hops: 0, Flow: 7},
		{US: 150, Node: 3, Layer: "mac", Verb: "tx", Class: cls, Hops: 1, Flow: 7},
		{US: 500, Node: 3, Layer: "core", Verb: "enqueue", Class: cls, Hops: 0, Flow: 9},
		{US: 550, Node: 3, Layer: "mac", Verb: "tx", Class: cls, Hops: 1, Flow: 9},
	})
	n2 := spanServer(t, 2, 0xbb, 1_000_200, []telemetry.Record{
		{US: 150, Node: 2, Layer: "mac", Verb: "recv", Class: cls, Hops: 1, Flow: 7},
		{US: 160, Node: 2, Layer: "core", Verb: "match", Class: cls, Hops: 1, Flow: 7},
		{US: 200, Node: 2, Layer: "mac", Verb: "tx", Class: cls, Hops: 2, Flow: 7},
		{US: 600, Node: 2, Layer: "mac", Verb: "recv", Class: cls, Hops: 1, Flow: 9},
		{US: 640, Node: 2, Layer: "core", Verb: "drop", Class: cls, Hops: 1, Flow: 9, Cause: "no-gradient"},
	})
	n1 := spanServer(t, 1, 0xcc, 1_000_500, []telemetry.Record{
		{US: 80, Node: 1, Layer: "mac", Verb: "recv", Class: cls, Hops: 2, Flow: 7},
		{US: 95, Node: 1, Layer: "core", Verb: "deliver", Class: cls, Hops: 2, Flow: 7},
	})
	return []string{
		strings.TrimPrefix(n3.URL, "http://"),
		strings.TrimPrefix(n2.URL, "http://"),
		strings.TrimPrefix(n1.URL, "http://"),
	}
}

func TestScrapeMergeReport(t *testing.T) {
	addrs := clusterServers(t)
	var buf bytes.Buffer
	if err := run(&buf, addrs); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"diffscope: 3 nodes, 11 spans, 2 flows",
		"boot 000000aa",
		"flight paths (1 delivered, 1 dropped):",
		"0007",
		// Wall-rebased hop latencies: recv@2 (base 1_000_200 + 150) minus
		// tx@3 (base 1_000_000 + 150) = 200µs; recv@1 minus tx@2 = 180µs.
		"n3 -(200µs)-> n2 -(180µs)-> n1",
		"delivered at node 1",
		"died at node 2 (hop 1): no-gradient",
		"custody not enabled",
		"end-to-end",
		"undelivered flows:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestFlowTimeline(t *testing.T) {
	addrs := clusterServers(t)
	var buf bytes.Buffer
	if err := run(&buf, append([]string{"-flow", "0007"}, addrs...)); err != nil {
		t.Fatalf("run -flow: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"flow 0007", "enqueue", "recv", "deliver", "delivered at node 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run(&buf, append([]string{"-flow", "00ff"}, addrs...)); err == nil ||
		!strings.Contains(err.Error(), "no spans for flow 00ff") {
		t.Errorf("unknown flow: got err %v", err)
	}
}

func TestMergedTraceOutput(t *testing.T) {
	addrs := clusterServers(t)
	path := filepath.Join(t.TempDir(), "merged.jsonl")
	var buf bytes.Buffer
	if err := run(&buf, append([]string{"-o", path}, addrs...)); err != nil {
		t.Fatalf("run -o: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, recs, err := telemetry.ReadJSONL(f)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if info.Topology != "live-scrape" || info.Nodes != 3 {
		t.Errorf("run info = %+v", info)
	}
	if len(recs) != 11 {
		t.Fatalf("got %d merged records, want 11", len(recs))
	}
	// Rebased: the earliest span across the cluster is time zero, and
	// records are time-ordered.
	if recs[0].US != 0 {
		t.Errorf("first record US = %d, want 0", recs[0].US)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].US < recs[i-1].US {
			t.Errorf("records out of order at %d: %d < %d", i, recs[i].US, recs[i-1].US)
		}
	}
}

func TestScrapeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no args: got err %v", err)
	}

	// A node without tracing enabled answers 404; diffscope should surface
	// the body text so the operator knows which knob to turn.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "flight-path tracing is not enabled (set trace_sample > 0)", http.StatusNotFound)
	}))
	t.Cleanup(srv.Close)
	buf.Reset()
	err := run(&buf, []string{strings.TrimPrefix(srv.URL, "http://")})
	if err == nil || !strings.Contains(err.Error(), "tracing is not enabled") {
		t.Errorf("404 scrape: got err %v", err)
	}

	if _, err := parseFlowID("zz"); err == nil {
		t.Error("parseFlowID(zz): want error")
	}
	if _, err := parseFlowID("0"); err == nil {
		t.Error("parseFlowID(0): want error")
	}
	if id, err := parseFlowID("0x00a3"); err != nil || id != 0xa3 {
		t.Errorf("parseFlowID(0x00a3) = %x, %v", id, err)
	}
}

func TestEmptyRing(t *testing.T) {
	srv := spanServer(t, 4, 0xdd, 42, nil)
	var buf bytes.Buffer
	if err := run(&buf, []string{strings.TrimPrefix(srv.URL, "http://")}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "no flight-path spans scraped") {
		t.Errorf("missing empty-ring hint:\n%s", buf.String())
	}
}
