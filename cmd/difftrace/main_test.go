package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diffusion"
	"diffusion/internal/experiments"
	"diffusion/internal/telemetry"
)

var update = flag.Bool("update", false, "regenerate testdata golden fixtures")

const (
	goldenPath      = "testdata/golden.jsonl"
	goldenSpansPath = "testdata/golden_spans.jsonl"
)

// generateGolden produces the fixture trace: a four-node line with a
// surveillance-style flow and a scripted mid-run link blackout, exported
// as JSONL. The simulation is deterministic, so this byte stream is stable
// across runs and machines.
func generateGolden(t *testing.T) []byte {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     7,
		Topology: diffusion.LineTopology(4, 10),
	})
	tr := net.NewTrace(0)
	inj := net.NewFaultInjector()
	inj.LinkDownAt(90*time.Second, 2, 3)
	inj.LinkUpAt(150*time.Second, 2, 3)
	tr.SetFaultScript(inj.Script())

	sink := net.Node(1)
	sink.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "temperature"),
	}, func(m *diffusion.Message) {})
	source := net.Node(4)
	pub := source.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.IS, "temperature"),
	})
	seq := int32(0)
	net.Every(10*time.Second, func() {
		seq++
		source.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
		})
	})
	net.Run(4 * time.Minute)

	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenUpToDate regenerates the fixture in memory and requires the
// checked-in file to match byte for byte — both a staleness guard and a
// determinism check. Run with -update to rewrite it.
func TestGoldenUpToDate(t *testing.T) {
	got := generateGolden(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test ./cmd/difftrace -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden trace is stale: regenerated %d bytes differ from checked-in %d bytes; run go test ./cmd/difftrace -run Golden -update", len(got), len(want))
	}
}

// generateGoldenSpans produces the flight-path fixture: the same
// four-node line, traced with 100% sampling so every origination carries
// a flow ID and the exported trace includes the span records.
func generateGoldenSpans(t *testing.T) []byte {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:          7,
		Topology:      diffusion.LineTopology(4, 10),
		TraceSampling: 1.0,
	})
	tr := net.NewTrace(0)
	sink := net.Node(1)
	sink.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "temperature"),
	}, func(m *diffusion.Message) {})
	source := net.Node(4)
	pub := source.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.IS, "temperature"),
	})
	seq := int32(0)
	net.Every(10*time.Second, func() {
		seq++
		source.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
		})
	})
	net.Run(3 * time.Minute)

	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenSpansUpToDate is the staleness/determinism guard for the
// flight-path fixture. Run with -update to rewrite it.
func TestGoldenSpansUpToDate(t *testing.T) {
	got := generateGoldenSpans(t)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenSpansPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSpansPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenSpansPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenSpansPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with go test ./cmd/difftrace -run Golden -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden spans trace is stale: regenerated %d bytes differ from checked-in %d bytes; run go test ./cmd/difftrace -run Golden -update", len(got), len(want))
	}
}

func TestPathsOnGoldenSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"paths", goldenSpansPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flight paths:", "delivered", "n4", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("paths output missing %q:\n%s", want, out)
		}
	}

	// Single-flow timeline: pick a delivered flow out of the trace.
	_, recs, err := load(goldenSpansPath)
	if err != nil {
		t.Fatal(err)
	}
	var flowID uint16
	for _, r := range recs {
		if r.Flow != 0 && r.Verb == "deliver" {
			flowID = r.Flow
			break
		}
	}
	if flowID == 0 {
		t.Fatal("no delivered flow in golden spans trace")
	}
	buf.Reset()
	if err := run(&buf, []string{"paths", "-flow", fmt.Sprintf("%04x", flowID), goldenSpansPath}); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"deliver", "recv", "delivered at node"} {
		if !strings.Contains(out, want) {
			t.Errorf("flow timeline missing %q:\n%s", want, out)
		}
	}
}

func TestLatencyOnGoldenSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"latency", goldenSpansPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"latency over", "per-hop", "end-to-end", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q:\n%s", want, out)
		}
	}
}

// TestPathsOnUntracedGolden: the span-free fixture must degrade politely.
func TestPathsOnUntracedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"paths", goldenPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no flight-path spans") {
		t.Errorf("paths on untraced trace:\n%s", buf.String())
	}
}

func TestInfoOnGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"info", goldenPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"seed=7", "nodes=4", "fault script:", "link 2<->3 down at 1m30s", "records:"} {
		if !strings.Contains(out, want) {
			t.Errorf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestBudgetOnGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"budget", goldenPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"message budget", "INTEREST", "DATA", "control (interest+reinforcement)"} {
		if !strings.Contains(out, want) {
			t.Errorf("budget output missing %q:\n%s", want, out)
		}
	}
}

func TestFlowsOnGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"flows", "-top", "3", goldenPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "data originations") || !strings.Contains(out, "slowest 3 flows:") {
		t.Errorf("flows output:\n%s", out)
	}

	// Pick a real flow ID out of the trace and ask for its hop-by-hop view.
	_, recs, err := load(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	id := ""
	for _, r := range recs {
		if r.Class == "DATA" || r.Class == "EXPLORATORY_DATA" {
			id = r.ID
			break
		}
	}
	if id == "" {
		t.Fatal("no data record in golden trace")
	}
	buf.Reset()
	if err := run(&buf, []string{"flows", "-id", id, goldenPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flow "+id) || !strings.Contains(buf.String(), "node=") {
		t.Errorf("flow detail output:\n%s", buf.String())
	}
}

func TestGradientsOnGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"gradients", "-node", "2", goldenPath}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gradient timeline for node 2") || !strings.Contains(out, "gradient -> ") {
		t.Errorf("gradients output:\n%s", out)
	}
	// The 2<->3 blackout involves node 2, so it must appear in the timeline.
	if !strings.Contains(out, "fault link-down") {
		t.Errorf("gradients output missing the node's fault events:\n%s", out)
	}
}

func TestDiffIdenticalAndDivergent(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"diff", goldenPath, goldenPath}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traces are identical") {
		t.Errorf("self-diff output:\n%s", buf.String())
	}

	// Mutate one record and diff again: the tool must localize the change.
	info, recs, err := load(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	recs[len(recs)/2].Hops++
	mutated := filepath.Join(t.TempDir(), "mutated.jsonl")
	f, err := os.Create(mutated)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(f, info, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	buf.Reset()
	if err := run(&buf, []string{"diff", goldenPath, mutated}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "first divergence at record") {
		t.Errorf("diff output:\n%s", buf.String())
	}
}

func TestChromeOnGolden(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"chrome", "-o", out, goldenPath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome output has no trace events")
	}
}

func TestBadInvocations(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"bogus", goldenPath},
		{"info"},
		{"info", "no-such-file.jsonl"},
		{"diff", goldenPath},
	} {
		if err := run(&bytes.Buffer{}, args); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

// TestBudgetMatchesExperimentSummary is the end-to-end determinism check:
// a traced churn (relay-kill) run exported as JSONL and re-read by this
// tool must yield exactly the per-class counts the experiment's own trace
// reports. Any skew means export, parse, or the trace itself is lossy.
func TestBudgetMatchesExperimentSummary(t *testing.T) {
	cfg := experiments.DefaultChurn()
	cfg.Seeds = []int64{1}
	cfg.Duration = 10 * time.Minute
	cfg.KillAt = 5 * time.Minute
	_, tr, snap := experiments.RunRelayKillTraced(cfg, 1)

	var buf bytes.Buffer
	if err := tr.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	info, recs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := classCounts(recs)
	want := tr.CountByClass()
	total := 0
	for class, n := range want {
		if counts[class.String()] != n {
			t.Errorf("class %v: trace has %d, exported budget has %d", class, n, counts[class.String()])
		}
		total += n
	}
	if got := len(recs) - len(tr.Faults()); got != total {
		t.Errorf("exported %d message records, trace holds %d events", got, total)
	}
	if len(info.FaultScript) == 0 {
		t.Error("exported churn trace has no fault script")
	}
	if snap.Total("core.sent.data") == 0 {
		t.Error("metrics snapshot shows no reinforced data sent")
	}
}
