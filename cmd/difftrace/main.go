// Command difftrace analyzes the structured JSONL traces the simulator
// exports (Trace.ExportJSONL, diffsim -trace-out). The paper's section 7
// asks for exactly this kind of tooling: "we were repeatedly challenged by
// the difficulty in understanding what was going on in a network of dozens
// of physically distributed nodes". A trace is a complete, deterministic
// account of a run; difftrace turns it into answers.
//
// Usage:
//
//	difftrace info trace.jsonl                  # run header, counts, fault script
//	difftrace budget trace.jsonl                # message budget by class, control vs data
//	difftrace flows [-top N] [-id ID] trace.jsonl   # per-flow hop-by-hop latency
//	difftrace gradients -node N trace.jsonl     # gradient-table timeline for one node
//	difftrace paths [-flow F] trace.jsonl       # causal flight paths (needs TraceSampling > 0)
//	difftrace latency trace.jsonl               # per-hop and end-to-end latency percentiles
//	difftrace diff a.jsonl b.jsonl              # where two runs diverge
//	difftrace chrome [-o out.json] trace.jsonl  # convert for chrome://tracing
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"diffusion/internal/flightpath"
	"diffusion/internal/telemetry"
)

const usage = "usage: difftrace <info|budget|flows|gradients|paths|latency|diff|chrome> [flags] trace.jsonl [trace2.jsonl]"

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "difftrace:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) < 1 {
		return errors.New(usage)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "info":
		info, recs, err := loadOne(rest)
		if err != nil {
			return err
		}
		infoReport(w, info, recs)
	case "budget":
		info, recs, err := loadOne(rest)
		if err != nil {
			return err
		}
		budgetReport(w, info, recs)
	case "flows":
		fs := flag.NewFlagSet("flows", flag.ContinueOnError)
		top := fs.Int("top", 0, "also list the N slowest flows")
		id := fs.String("id", "", "print one flow's hop-by-hop record")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		_, recs, err := loadOne(fs.Args())
		if err != nil {
			return err
		}
		if *id != "" {
			return flowDetail(w, recs, *id)
		}
		flowsReport(w, recs, *top)
	case "gradients":
		fs := flag.NewFlagSet("gradients", flag.ContinueOnError)
		node := fs.Uint("node", 0, "node whose gradient table to reconstruct")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		info, recs, err := loadOne(fs.Args())
		if err != nil {
			return err
		}
		return gradientReport(w, info, recs, uint32(*node))
	case "paths":
		fs := flag.NewFlagSet("paths", flag.ContinueOnError)
		flowHex := fs.String("flow", "", "print one flow's full event timeline (hex flow ID as listed)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		flowID, err := parseFlowID(*flowHex)
		if err != nil {
			return err
		}
		_, recs, err := loadOne(fs.Args())
		if err != nil {
			return err
		}
		return pathsReport(w, recs, flowID)
	case "latency":
		_, recs, err := loadOne(rest)
		if err != nil {
			return err
		}
		return latencyReport(w, recs)
	case "diff":
		if len(rest) != 2 {
			return errors.New("usage: difftrace diff a.jsonl b.jsonl")
		}
		ia, ra, err := load(rest[0])
		if err != nil {
			return err
		}
		ib, rb, err := load(rest[1])
		if err != nil {
			return err
		}
		diffReport(w, rest[0], rest[1], ia, ib, ra, rb)
	case "chrome":
		fs := flag.NewFlagSet("chrome", flag.ContinueOnError)
		out := fs.String("o", "", "output file (default stdout)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		info, recs, err := loadOne(fs.Args())
		if err != nil {
			return err
		}
		dst := w
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		return telemetry.WriteChromeTrace(dst, info, recs)
	default:
		return fmt.Errorf("unknown subcommand %q\n%s", cmd, usage)
	}
	return nil
}

// load reads one exported trace.
func load(path string) (telemetry.RunInfo, []telemetry.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return telemetry.RunInfo{}, nil, err
	}
	defer f.Close()
	return telemetry.ReadJSONL(f)
}

// loadOne expects exactly one positional argument: the trace file.
func loadOne(args []string) (telemetry.RunInfo, []telemetry.Record, error) {
	if len(args) != 1 {
		return telemetry.RunInfo{}, nil, errors.New("expected exactly one trace file\n" + usage)
	}
	return load(args[0])
}

// span returns the time covered by the records.
func span(recs []telemetry.Record) time.Duration {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].At() - recs[0].At()
}

// infoReport prints the run header and coarse counts.
func infoReport(w io.Writer, info telemetry.RunInfo, recs []telemetry.Record) {
	fmt.Fprintf(w, "run: seed=%d topology=%s nodes=%d\n", info.Seed, info.Topology, info.Nodes)
	fmt.Fprintf(w, "rates: interest=%s gradient-lifetime=%s", info.InterestInterval, info.GradientLifetime)
	if info.ExploratoryInterval != "" {
		fmt.Fprintf(w, " exploratory=%s", info.ExploratoryInterval)
	}
	if info.ExploratoryEvery > 0 {
		fmt.Fprintf(w, " exploratory-every=%d", info.ExploratoryEvery)
	}
	fmt.Fprintf(w, " ttl=%d\n", info.TTL)
	msgs, faults := 0, 0
	for _, r := range recs {
		if r.Layer == "fault" {
			faults++
		} else {
			msgs++
		}
	}
	fmt.Fprintf(w, "records: %d (%d messages, %d faults) over %v\n", len(recs), msgs, faults, span(recs))
	if info.DroppedEvents > 0 || info.DroppedFaults > 0 {
		fmt.Fprintf(w, "WARNING: %d events and %d faults were dropped at the trace limit; the end of the run is missing\n",
			info.DroppedEvents, info.DroppedFaults)
	}
	if len(info.FaultScript) > 0 {
		fmt.Fprintln(w, "fault script:")
		for _, line := range info.FaultScript {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

// classCounts tallies message records by class; faults are excluded, so
// the totals line up with the simulator's own Trace.CountByClass.
func classCounts(recs []telemetry.Record) map[string]int {
	out := map[string]int{}
	for _, r := range recs {
		if r.Layer == "fault" {
			continue
		}
		out[r.Class]++
	}
	return out
}

// controlClass reports whether a message class is routing control traffic
// (as opposed to payload-bearing data) for the Figure 9-style budget split.
func controlClass(class string) bool {
	switch class {
	case "INTEREST", "POSITIVE_REINFORCEMENT", "NEGATIVE_REINFORCEMENT":
		return true
	}
	return false
}

// budgetReport prints the message budget: per-class processing counts with
// the originated/forwarded split, then the control-vs-data share — the
// paper's Figure 9 accounting, read off a trace instead of a model.
func budgetReport(w io.Writer, info telemetry.RunInfo, recs []telemetry.Record) {
	type row struct{ org, fwd int }
	byClass := map[string]*row{}
	for _, r := range recs {
		if r.Layer == "fault" {
			continue
		}
		c := byClass[r.Class]
		if c == nil {
			c = &row{}
			byClass[r.Class] = c
		}
		if r.Verb == "org" {
			c.org++
		} else {
			c.fwd++
		}
	}
	classes := make([]string, 0, len(byClass))
	total := 0
	for c, r := range byClass {
		classes = append(classes, c)
		total += r.org + r.fwd
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "message budget: %d processing events over %v\n", total, span(recs))
	fmt.Fprintf(w, "  %-24s %8s %8s %8s\n", "class", "org", "fwd", "total")
	control := 0
	for _, c := range classes {
		r := byClass[c]
		fmt.Fprintf(w, "  %-24s %8d %8d %8d\n", c, r.org, r.fwd, r.org+r.fwd)
		if controlClass(c) {
			control += r.org + r.fwd
		}
	}
	if total > 0 {
		fmt.Fprintf(w, "control (interest+reinforcement): %d (%.1f%%)\n",
			control, 100*float64(control)/float64(total))
		fmt.Fprintf(w, "data (exploratory+reinforced):    %d (%.1f%%)\n",
			total-control, 100*float64(total-control)/float64(total))
	}
}

// flow is one message origination's journey through the network.
type flow struct {
	id      string
	class   string
	origin  uint32
	start   time.Duration
	end     time.Duration
	events  int
	maxHops int
}

// collectFlows groups data-class message records by message ID.
func collectFlows(recs []telemetry.Record) []flow {
	byID := map[string]*flow{}
	var order []string
	for _, r := range recs {
		if r.Layer == "fault" || (r.Class != "DATA" && r.Class != "EXPLORATORY_DATA") {
			continue
		}
		f := byID[r.ID]
		if f == nil {
			f = &flow{id: r.ID, class: r.Class, origin: r.Node, start: r.At()}
			byID[r.ID] = f
			order = append(order, r.ID)
		}
		f.events++
		f.end = r.At()
		if r.Hops > f.maxHops {
			f.maxHops = r.Hops
		}
	}
	out := make([]flow, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// flowsReport aggregates per-flow latency by class; top > 0 also lists the
// slowest individual flows.
func flowsReport(w io.Writer, recs []telemetry.Record, top int) {
	flows := collectFlows(recs)
	if len(flows) == 0 {
		fmt.Fprintln(w, "no data flows in trace")
		return
	}
	type agg struct {
		n     int
		sum   time.Duration
		max   time.Duration
		hops  int
		evsum int
	}
	byClass := map[string]*agg{}
	for _, f := range flows {
		a := byClass[f.class]
		if a == nil {
			a = &agg{}
			byClass[f.class] = a
		}
		lat := f.end - f.start
		a.n++
		a.sum += lat
		if lat > a.max {
			a.max = lat
		}
		a.hops += f.maxHops
		a.evsum += f.events
	}
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "flows: %d data originations\n", len(flows))
	fmt.Fprintf(w, "  %-18s %6s %12s %12s %9s %10s\n", "class", "flows", "mean lat", "max lat", "mean hops", "mean nodes")
	for _, c := range classes {
		a := byClass[c]
		fmt.Fprintf(w, "  %-18s %6d %12v %12v %9.1f %10.1f\n",
			c, a.n, (a.sum / time.Duration(a.n)).Round(time.Microsecond), a.max,
			float64(a.hops)/float64(a.n), float64(a.evsum)/float64(a.n))
	}
	if top > 0 {
		sort.Slice(flows, func(i, j int) bool { return flows[i].end-flows[i].start > flows[j].end-flows[j].start })
		if top > len(flows) {
			top = len(flows)
		}
		fmt.Fprintf(w, "slowest %d flows:\n", top)
		for _, f := range flows[:top] {
			fmt.Fprintf(w, "  %-12s %-18s from node %-4d latency %-12v hops %d\n",
				f.id, f.class, f.origin, f.end-f.start, f.maxHops)
		}
	}
}

// flowDetail prints one flow's hop-by-hop record: every node that
// processed the message, with the latency from origination.
func flowDetail(w io.Writer, recs []telemetry.Record, id string) error {
	var start time.Duration
	found := false
	for _, r := range recs {
		if r.Layer == "fault" || r.ID != id {
			continue
		}
		if !found {
			start = r.At()
			found = true
			fmt.Fprintf(w, "flow %s (%s):\n", id, r.Class)
		}
		fmt.Fprintf(w, "  +%-12v node=%-4d %s hops=%d from=%d\n",
			r.At()-start, r.Node, r.Verb, r.Hops, r.From)
	}
	if !found {
		return fmt.Errorf("no records for message id %q", id)
	}
	return nil
}

// gradientReport replays one node's gradient table from the trace: every
// interest arrival creates or refreshes a gradient toward its sender
// (expiring one gradient lifetime later), reinforcements mark the data
// gradient the neighbor selected, and fault events involving the node
// interleave. This is the per-node timeline view of the paper's gradient
// machinery.
func gradientReport(w io.Writer, info telemetry.RunInfo, recs []telemetry.Record, node uint32) error {
	lifetime, err := time.ParseDuration(info.GradientLifetime)
	if err != nil {
		return fmt.Errorf("bad gradient_lifetime %q in trace header: %v", info.GradientLifetime, err)
	}
	fmt.Fprintf(w, "gradient timeline for node %d (lifetime %v):\n", node, lifetime)
	expiry := map[uint32]time.Duration{} // neighbor -> gradient expiry
	live := func(now time.Duration) int {
		n := 0
		for nb, exp := range expiry {
			if exp <= now {
				delete(expiry, nb)
				continue
			}
			n++
		}
		return n
	}
	lines := 0
	for _, r := range recs {
		at := r.At()
		if r.Layer == "fault" {
			if r.Node == node || r.Peer == node {
				fmt.Fprintf(w, "  %12v fault %s node=%d peer=%d\n", at, r.Verb, r.Node, r.Peer)
				lines++
			}
			continue
		}
		if r.Node != node {
			continue
		}
		switch r.Class {
		case "INTEREST":
			verb := "refreshed"
			if _, ok := expiry[r.From]; !ok {
				verb = "created"
			}
			expiry[r.From] = at + lifetime
			fmt.Fprintf(w, "  %12v gradient -> %-4d %-9s (interest, expires %v; %d live)\n",
				at, r.From, verb, at+lifetime, live(at))
			lines++
		case "POSITIVE_REINFORCEMENT":
			fmt.Fprintf(w, "  %12v reinforced via %d (%d live)\n", at, r.From, live(at))
			lines++
		case "NEGATIVE_REINFORCEMENT":
			fmt.Fprintf(w, "  %12v negatively reinforced via %d (%d live)\n", at, r.From, live(at))
			lines++
		}
	}
	if lines == 0 {
		fmt.Fprintf(w, "  (no gradient activity recorded for node %d)\n", node)
	}
	return nil
}

// parseFlowID parses a 16-bit flow ID in the hex spelling the reports
// use ("0f5a", optionally 0x-prefixed); empty means no flow selected.
func parseFlowID(s string) (uint16, error) {
	if s == "" {
		return 0, nil
	}
	s = strings.TrimPrefix(s, "0x")
	v, err := strconv.ParseUint(s, 16, 16)
	if err != nil || v == 0 {
		return 0, fmt.Errorf("bad flow ID %q: want the 4-digit hex ID from the paths listing", s)
	}
	return uint16(v), nil
}

// pathsReport prints every sampled flight path: the relay chain, the
// delivery or drop verdict, and reinforcement activity the flow triggered.
// With flowID != 0, it prints that flow's full event timeline instead.
func pathsReport(w io.Writer, recs []telemetry.Record, flowID uint16) error {
	flows := flightpath.Assemble(recs)
	if len(flows) == 0 {
		fmt.Fprintln(w, "no flight-path spans in trace (run with TraceSampling > 0)")
		return nil
	}
	if flowID != 0 {
		for _, f := range flows {
			if f.Flow != flowID {
				continue
			}
			fmt.Fprintf(w, "flow %04x %s id=%s %s\n", f.Flow, f.Class, f.ID, flightpath.PathString(f))
			for _, r := range f.Events {
				fmt.Fprintf(w, "  +%-12v node=%-4d %-9s %-9s hops=%d", time.Duration(r.US-f.StartUS)*time.Microsecond,
					r.Node, r.Layer, r.Verb, r.Hops)
				if r.Cause != "" {
					fmt.Fprintf(w, " cause=%s", r.Cause)
				}
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "  %s\n", flightpath.Localize(f))
			return nil
		}
		return fmt.Errorf("no spans for flow %04x", flowID)
	}
	delivered, dropped := 0, 0
	for _, f := range flows {
		if f.Delivered {
			delivered++
		} else if f.Dropped {
			dropped++
		}
	}
	fmt.Fprintf(w, "flight paths: %d sampled flows (%d delivered, %d dropped)\n", len(flows), delivered, dropped)
	for _, f := range flows {
		fmt.Fprintf(w, "  %04x %-18s %-28s %s\n", f.Flow, f.Class, flightpath.PathString(f), flightpath.Localize(f))
		if len(f.Reinforcements) > 0 {
			pos, neg := 0, 0
			for _, e := range f.Reinforcements {
				if e.Negative {
					neg++
				} else {
					pos++
				}
			}
			fmt.Fprintf(w, "       reinforcement: %d positive, %d negative events\n", pos, neg)
		}
	}
	return nil
}

// latencyReport prints per-hop and end-to-end latency percentiles over
// the sampled flows.
func latencyReport(w io.Writer, recs []telemetry.Record) error {
	flows := flightpath.Assemble(recs)
	if len(flows) == 0 {
		fmt.Fprintln(w, "no flight-path spans in trace (run with TraceSampling > 0)")
		return nil
	}
	line := func(name string, samples []int64) {
		if len(samples) == 0 {
			fmt.Fprintf(w, "  %-10s (no samples)\n", name)
			return
		}
		fmt.Fprintf(w, "  %-10s n=%-6d p50=%-10v p90=%-10v p99=%-10v max=%v\n", name, len(samples),
			time.Duration(flightpath.Percentile(samples, 50))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 90))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 99))*time.Microsecond,
			time.Duration(flightpath.Percentile(samples, 100))*time.Microsecond)
	}
	fmt.Fprintf(w, "latency over %d sampled flows:\n", len(flows))
	line("per-hop", flightpath.PerHopLatencies(flows))
	line("end-to-end", flightpath.E2ELatencies(flows))
	return nil
}

// diffReport compares two traces: header differences, per-class and
// per-node count deltas, and the first record where the runs diverge.
// Equal seeds must produce byte-identical traces; a non-empty diff of two
// same-seed runs is a determinism bug.
func diffReport(w io.Writer, nameA, nameB string, ia, ib telemetry.RunInfo, ra, rb []telemetry.Record) {
	fmt.Fprintf(w, "A: %s (%d records)\nB: %s (%d records)\n", nameA, len(ra), nameB, len(rb))
	headerDiff := false
	cmp := func(field, a, b string) {
		if a != b {
			fmt.Fprintf(w, "header %-22s A=%s B=%s\n", field, a, b)
			headerDiff = true
		}
	}
	cmp("seed", fmt.Sprint(ia.Seed), fmt.Sprint(ib.Seed))
	cmp("topology", ia.Topology, ib.Topology)
	cmp("nodes", fmt.Sprint(ia.Nodes), fmt.Sprint(ib.Nodes))
	cmp("interest_interval", ia.InterestInterval, ib.InterestInterval)
	cmp("gradient_lifetime", ia.GradientLifetime, ib.GradientLifetime)
	cmp("exploratory_interval", ia.ExploratoryInterval, ib.ExploratoryInterval)
	cmp("ttl", fmt.Sprint(ia.TTL), fmt.Sprint(ib.TTL))
	if !headerDiff {
		fmt.Fprintln(w, "headers match")
	}

	ca, cb := classCounts(ra), classCounts(rb)
	classes := map[string]bool{}
	for c := range ca {
		classes[c] = true
	}
	for c := range cb {
		classes[c] = true
	}
	sorted := make([]string, 0, len(classes))
	for c := range classes {
		sorted = append(sorted, c)
	}
	sort.Strings(sorted)
	classDiff := false
	for _, c := range sorted {
		if ca[c] != cb[c] {
			fmt.Fprintf(w, "class %-24s A=%d B=%d (%+d)\n", c, ca[c], cb[c], cb[c]-ca[c])
			classDiff = true
		}
	}
	if !classDiff {
		fmt.Fprintln(w, "per-class counts match")
	}

	// First divergence: the earliest index where the record streams differ.
	n := len(ra)
	if len(rb) < n {
		n = len(rb)
	}
	for i := 0; i < n; i++ {
		if ra[i] != rb[i] {
			fmt.Fprintf(w, "first divergence at record %d:\n  A: %+v\n  B: %+v\n", i, ra[i], rb[i])
			return
		}
	}
	if len(ra) != len(rb) {
		fmt.Fprintf(w, "records identical through %d; lengths differ (A=%d, B=%d)\n", n, len(ra), len(rb))
		return
	}
	fmt.Fprintln(w, "traces are identical")
}
