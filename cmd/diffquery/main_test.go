package main

import (
	"testing"
	"time"
)

func TestRunTestbedQuery(t *testing.T) {
	err := run("testbed",
		"type EQ four-legged-animal-search, interval IS 6000",
		"type IS four-legged-animal-search, instance IS elephant",
		"", 28, 6*time.Second, 3*time.Minute, 1, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGridAndLine(t *testing.T) {
	for _, topo := range []string{"grid:3x3", "line:4"} {
		err := run(topo,
			"task EQ watch", "task IS watch",
			"", 28 /* falls back to 1 */, 5*time.Second, 2*time.Minute, 2, false)
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string][3]string{
		"bad topology": {"mesh:9", "task EQ x", "task IS x"},
		"bad grid":     {"grid:9", "task EQ x", "task IS x"},
		"bad line":     {"line:1", "task EQ x", "task IS x"},
		"bad query":    {"testbed", "task WAT x", "task IS x"},
		"bad data":     {"testbed", "task EQ x", "task WAT x"},
	}
	for name, c := range cases {
		if err := run(c[0], c[1], c[2], "", 28, time.Second, time.Second, 1, false); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if err := run("line:3", "task EQ x", "task IS x", "99", 1, time.Second, time.Second, 1, false); err == nil {
		t.Error("source outside topology must error")
	}
	if err := run("line:3", "task EQ x", "task IS x", "zzz", 1, time.Second, time.Second, 1, false); err == nil {
		t.Error("unparsable sources must error")
	}
}
