// Command diffquery issues one attribute-named query against a simulated
// sensor network and reports what comes back — a command-line counterpart
// to the paper's section 3.2 worked example, using the paper's own textual
// attribute notation.
//
// Usage:
//
//	diffquery [flags]
//	  -topology  testbed | grid:COLSxROWS | line:N     (default testbed)
//	  -query     attribute clauses for the interest
//	  -data      attribute actuals every source publishes and sends
//	  -sources   comma-separated source node IDs (default: testbed sources)
//	  -sink      sink node ID (default: testbed sink 28)
//	  -interval  event period per source (default 6s)
//	  -run       virtual duration (default 5m)
//	  -seed      RNG seed (default 1)
//	  -trace     print the trace summary afterwards
//	  -dot       print the topology as Graphviz DOT and exit
//
// Example — the paper's animal query on the testbed:
//
//	diffquery \
//	  -query 'type EQ four-legged-animal-search, interval IS 6000' \
//	  -data  'type IS four-legged-animal-search, instance IS elephant, confidence IS 0.85'
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"diffusion"
)

func main() {
	var (
		topology = flag.String("topology", "testbed", "testbed | grid:COLSxROWS | line:N")
		query    = flag.String("query", "type EQ four-legged-animal-search, interval IS 6000", "interest attributes (paper notation)")
		data     = flag.String("data", "type IS four-legged-animal-search, instance IS elephant, confidence IS 0.85", "data actuals published by each source")
		sources  = flag.String("sources", "", "comma-separated source node IDs (default: testbed sources)")
		sink     = flag.Uint("sink", uint(diffusion.TestbedSink), "sink node ID")
		interval = flag.Duration("interval", 6*time.Second, "event period per source")
		runFor   = flag.Duration("run", 5*time.Minute, "virtual duration")
		seed     = flag.Int64("seed", 1, "RNG seed")
		trace    = flag.Bool("trace", false, "print a trace summary afterwards")
		dot      = flag.Bool("dot", false, "print the topology as Graphviz DOT and exit")
	)
	flag.Parse()
	if *dot {
		tp, _, err := buildTopology(*topology)
		if err != nil {
			fmt.Fprintln(os.Stderr, "diffquery:", err)
			os.Exit(1)
		}
		tp.WriteDOT(os.Stdout, 13.5)
		return
	}
	if err := run(*topology, *query, *data, *sources, uint32(*sink), *interval, *runFor, *seed, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "diffquery:", err)
		os.Exit(1)
	}
}

func run(topology, query, data, sources string, sink uint32, interval, runFor time.Duration, seed int64, trace bool) error {
	tp, defaultSources, err := buildTopology(topology)
	if err != nil {
		return err
	}
	interest, err := diffusion.ParseAttributes(query)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	actuals, err := diffusion.ParseAttributes(data)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	srcIDs := defaultSources
	if sources != "" {
		srcIDs = nil
		for _, f := range strings.Split(sources, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
			if err != nil {
				return fmt.Errorf("sources: %w", err)
			}
			srcIDs = append(srcIDs, uint32(id))
		}
	}

	if _, ok := tp.Node(sink); !ok {
		// The default sink is the testbed's node 28; on other topologies
		// fall back to node 1.
		sink = 1
	}
	for _, id := range srcIDs {
		if _, ok := tp.Node(id); !ok {
			return fmt.Errorf("source node %d not in topology %q", id, tp.Name)
		}
	}

	net := diffusion.NewNetwork(diffusion.NetworkConfig{Seed: seed, Topology: tp})
	var tr *diffusion.Trace
	if trace {
		tr = net.NewTrace(0)
	}

	delivered := 0
	distinct := map[int32]bool{}
	net.Node(sink).Subscribe(interest, func(m *diffusion.Message) {
		delivered++
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
		if delivered <= 5 {
			fmt.Printf("[%10v] %v %v\n", net.Now().Truncate(time.Millisecond), m.Class, m.Attrs)
		} else if delivered == 6 {
			fmt.Println("  ... (further deliveries counted silently)")
		}
	})

	pubs := make([]diffusion.PublicationHandle, len(srcIDs))
	nodes := make([]*diffusion.Node, len(srcIDs))
	for i, id := range srcIDs {
		nodes[i] = net.Node(id)
		pubs[i] = nodes[i].Publish(actuals)
	}
	seq := int32(0)
	net.Every(interval, func() {
		seq++
		for i := range nodes {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			})
		}
	})

	fmt.Printf("query %v\n  at node %d over %q (%d nodes), sources %v, %v of virtual time\n\n",
		interest, sink, tp.Name, tp.Len(), srcIDs, runFor)
	net.Run(runFor)

	fmt.Printf("\ndelivered %d messages, %d of %d distinct events (%.0f%%)\n",
		delivered, len(distinct), seq, 100*float64(len(distinct))/float64(seq))
	fmt.Printf("network: %d diffusion bytes, channel %+v\n",
		net.TotalDiffusionBytes(), net.ChannelStats())
	if tr != nil {
		fmt.Println()
		tr.Summary(os.Stdout)
	}
	return nil
}

func buildTopology(spec string) (*diffusion.Topology, []uint32, error) {
	switch {
	case spec == "testbed":
		return diffusion.TestbedTopology(), diffusion.TestbedSources(), nil
	case strings.HasPrefix(spec, "grid:"):
		dims := strings.SplitN(strings.TrimPrefix(spec, "grid:"), "x", 2)
		if len(dims) != 2 {
			return nil, nil, fmt.Errorf("grid spec %q: want grid:COLSxROWS", spec)
		}
		cols, err1 := strconv.Atoi(dims[0])
		rows, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || cols < 1 || rows < 1 {
			return nil, nil, fmt.Errorf("grid spec %q: bad dimensions", spec)
		}
		tp := diffusion.GridTopology(cols, rows, 10)
		return tp, []uint32{uint32(cols * rows)}, nil
	case strings.HasPrefix(spec, "line:"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "line:"))
		if err != nil || n < 2 {
			return nil, nil, fmt.Errorf("line spec %q: want line:N with N>=2", spec)
		}
		return diffusion.LineTopology(n, 10), []uint32{uint32(n)}, nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", spec)
	}
}
