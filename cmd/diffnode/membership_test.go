package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// discoveryConfig is a daemon config tuned for fast in-process membership
// tests: tight announce and failure-detector periods, short drain.
func discoveryConfig(id uint32) Config {
	return Config{
		ID:               id,
		Drain:            10 * time.Millisecond,
		InterestInterval: 100 * time.Millisecond,
		ForwardJitter:    time.Millisecond,
		AnnounceInterval: 40 * time.Millisecond,
		Heartbeat:        25 * time.Millisecond,
		SuspectAfter:     100 * time.Millisecond,
		DeadAfter:        300 * time.Millisecond,
	}
}

// neighborRows fetches GET /neighbors and returns the rows keyed by peer
// ID, plus the envelope.
func neighborRows(t *testing.T, d *Daemon) (map[uint32]map[string]any, map[string]any) {
	t.Helper()
	code, resp := ctl(t, d, "GET", "/neighbors", "")
	if code != 200 {
		t.Fatalf("GET /neighbors: %d %v", code, resp)
	}
	rows := map[uint32]map[string]any{}
	if list, ok := resp["neighbors"].([]any); ok {
		for _, e := range list {
			row := e.(map[string]any)
			rows[uint32(row["id"].(float64))] = row
		}
	}
	return rows, resp
}

// waitMember polls d's /neighbors until peer shows the wanted membership
// state (or any state, when want is "").
func waitMember(t *testing.T, d *Daemon, peer uint32, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		rows, _ := neighborRows(t, d)
		if row, ok := rows[peer]; ok && (want == "" || row["member"] == want) {
			return row
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d: peer %d never reached membership %q (have %v)",
				d.cfg.ID, peer, want, rows[peer])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonDiscoveryJoin boots a listening seed and a joiner pointed at
// it with -seed semantics, and asserts the full membership lifecycle over
// GET /neighbors: mutual promotion with peered handshakes, discovered
// origin, cross-advertised control-plane addresses, and a graceful leave
// on shutdown.
func TestDaemonDiscoveryJoin(t *testing.T) {
	seedCfg := discoveryConfig(1)
	seedCfg.Discover = true
	seed := startTestDaemon(t, seedCfg)

	joinCfg := discoveryConfig(2)
	joinCfg.Seeds = []string{seed.UDPAddr().String()}
	join := startTestDaemon(t, joinCfg)

	// Both sides promote and complete the two-way handshake.
	seedRow := waitMember(t, seed, 2, "neighbor")
	joinRow := waitMember(t, join, 1, "neighbor")
	for name, row := range map[string]map[string]any{"seed": seedRow, "join": joinRow} {
		if row["origin"] != "discovered" {
			t.Errorf("%s row origin = %v, want discovered", name, row["origin"])
		}
	}
	waitFor := func(cond func() bool, msg string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal(msg)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitFor(func() bool {
		r := waitMember(t, seed, 2, "neighbor")
		return r["peered"] == true
	}, "seed never saw the joiner reciprocate")

	// Announces carry the HTTP port: each side can derive the other's
	// control plane — the contract diffscope's mesh walk depends on.
	if got, want := waitMember(t, seed, 2, "neighbor")["http"], join.HTTPAddr().String(); got != want {
		t.Errorf("seed's http for joiner = %v, want %v", got, want)
	}
	if got, want := waitMember(t, join, 1, "neighbor")["http"], seed.HTTPAddr().String(); got != want {
		t.Errorf("joiner's http for seed = %v, want %v", got, want)
	}
	if _, resp := neighborRows(t, seed); resp["discovery"] != true {
		t.Errorf("discovery = %v, want true", resp["discovery"])
	}

	// Graceful shutdown sends leave: the seed demotes the joiner without
	// waiting out the failure detector.
	join.Shutdown()
	waitFor(func() bool {
		rows, _ := neighborRows(t, seed)
		row, ok := rows[2]
		return !ok || row["member"] == "left"
	}, "seed never processed the joiner's leave")
}

// TestNeighborsFlagPrecedence pins the -neighbors flag contract: the flag
// is the entire table (full override of the config file, never a merge),
// an explicitly empty flag clears the file's table, and a node with
// neither a table nor discovery is rejected at the CLI.
func TestNeighborsFlagPrecedence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "node.json")
	conf := `{"id": 1, "neighbors": {"2": "127.0.0.1:7002", "3": "127.0.0.1:7003"}}`
	if err := os.WriteFile(path, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}

	// Flag overrides replace the file's table wholesale.
	cfg, err := buildConfig(path, flagOverrides{
		neighborsSet: true, neighbors: "9=127.0.0.1:7009",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Neighbors) != 1 || cfg.Neighbors[9] != "127.0.0.1:7009" {
		t.Fatalf("override table = %v, want only 9=127.0.0.1:7009", cfg.Neighbors)
	}

	// An empty -neighbors clears the static table; with a seed given the
	// node becomes discovery-only rather than an error.
	cfg, err = buildConfig(path, flagOverrides{
		neighborsSet: true, neighbors: "", seeds: "127.0.0.1:7001",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Neighbors) != 0 {
		t.Fatalf("cleared table = %v, want empty", cfg.Neighbors)
	}
	if !cfg.discoveryEnabled() {
		t.Fatal("seeds given but discovery not enabled")
	}

	// Clearing the table with no discovery fallback is a config error.
	if _, err := buildConfig(path, flagOverrides{neighborsSet: true}); err == nil {
		t.Fatal("no neighbors and no discovery: want error")
	}

	// Without the flag the file's table stands untouched.
	cfg, err = buildConfig(path, flagOverrides{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Neighbors) != 2 {
		t.Fatalf("file table = %v, want 2 entries", cfg.Neighbors)
	}

	// -discover alone satisfies the check (pure listener seed node).
	if _, err := buildConfig("", flagOverrides{discover: true}); err != nil {
		t.Fatalf("-discover alone: %v", err)
	}
}
