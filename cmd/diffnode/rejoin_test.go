package main

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"diffusion/internal/chaos"
)

// TestChaosRestartRejoinsDiscovery pins the contract the fleet chaos
// campaigns lean on: a SIGKILLed node warm-restarted by chaos.Proc.Restart
// under -discover rejoins the mesh as a new incarnation. The survivor
// must (a) re-promote the peer to a peered neighbor, (b) see a new boot
// nonce in its GET /neighbors row — proof the rejoin path ran rather
// than the old session limping on — and (c) count the boot-nonce change
// in discovery.rejoins.
func TestChaosRestartRejoinsDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("live process test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "diffnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 3
	udp := freeUDPPorts(t, n)
	httpPorts := freeTCPPorts(t, n)
	logs := make([]*lockedBuffer, n)
	procs := make([]*chaos.Proc, n)
	for i := 0; i < n; i++ {
		id := i + 1
		argv := []string{bin,
			"-id", fmt.Sprint(id),
			"-listen", fmt.Sprintf("127.0.0.1:%d", udp[i]),
			"-http", fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
			"-announce-interval", "40ms",
			"-heartbeat", "25ms",
			"-suspect-after", "300ms",
			// Long enough that the survivor still holds the victim as a
			// promoted (if suspect) neighbor when the new incarnation
			// announces — that is the rejoin path; a demote-then-recourt
			// would be a plain join and never count a rejoin.
			"-dead-after", "5s",
			"-drain", "100ms",
		}
		if i == 0 {
			argv = append(argv, "-discover")
		} else {
			argv = append(argv, "-seed", fmt.Sprintf("127.0.0.1:%d", udp[0]))
		}
		logs[i] = newLockedBuffer()
		p, err := chaos.Start(chaos.ProcSpec{
			ID:   uint32(id),
			HTTP: fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
			Log:  logs[i],
			Argv: argv,
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() {
			if p.Alive() {
				p.Kill()
			}
		})
	}
	for i, p := range procs {
		if err := p.WaitHealthy(10 * time.Second); err != nil {
			t.Fatalf("%v\n%s", err, logs[i].String())
		}
	}
	survivor, victim := procs[1], procs[2]

	// row fetches the survivor's /neighbors row for the victim.
	row := func() map[string]any {
		_, resp := chaosGet(t, survivor, "/neighbors")
		list, _ := resp["neighbors"].([]any)
		for _, e := range list {
			r, _ := e.(map[string]any)
			if id, _ := r["id"].(float64); uint32(id) == victim.ID() {
				return r
			}
		}
		return nil
	}
	peered := func(r map[string]any) bool {
		return r != nil && r["member"] == "neighbor" && r["peered"] == true
	}

	// First incarnation: seed gossip introduces 2 and 3 to each other;
	// wait for the full two-way handshake and the boot nonce to land.
	var bootBefore float64
	waitCluster(t, 15*time.Second, "survivor to peer with the victim", func() bool {
		r := row()
		if !peered(r) {
			return false
		}
		b, ok := r["boot"].(float64)
		bootBefore = b
		return ok
	})

	// SIGKILL — no leave frame, no journal flush — then warm-restart the
	// identical argv. The new process draws a fresh boot nonce and courts
	// the mesh again through the seed.
	if err := victim.Kill(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond) // long enough to turn suspect, not dead
	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := victim.WaitHealthy(10 * time.Second); err != nil {
		t.Fatalf("%v\n%s", err, logs[2].String())
	}

	waitCluster(t, 15*time.Second, "survivor to re-peer with the new incarnation", func() bool {
		r := row()
		if !peered(r) {
			return false
		}
		b, ok := r["boot"].(float64)
		return ok && b != bootBefore
	})
	bootAfter, _ := row()["boot"].(float64)
	if bootAfter == bootBefore {
		t.Fatalf("boot nonce unchanged across restart: %08x", uint32(bootBefore))
	}

	// The incarnation change is counted: somebody on the mesh (survivor
	// or seed, whoever still held the promoted record) logs a rejoin.
	rejoins := 0.0
	for i := 0; i < 2; i++ {
		rejoins += sentValue(t, promBody(t, httpPorts[i]),
			fmt.Sprintf(`diffusion_discovery_rejoins{scope="node%d"}`, i+1))
	}
	if rejoins < 1 {
		t.Errorf("discovery_rejoins = %v across survivor+seed, want >= 1", rejoins)
	}
	t.Logf("victim rejoined: boot %08x -> %08x, rejoins %v",
		uint32(bootBefore), uint32(bootAfter), rejoins)

	for i, p := range procs {
		if err := p.Terminate(10 * time.Second); err != nil {
			t.Errorf("%v\n%s", err, logs[i].String())
		}
	}
}
