package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diffusion/internal/chaos"
)

// TestChaosCustodyLongPartition is the disruption-tolerance acceptance
// test: a 5-process line 1(sink)-2-3-4-5(source) with custody transfer
// and fsync'd custody journals, partitioned between nodes 2 and 3 for
// ~8× the soft-state decay horizon (GradientLifetime = 2.5 × the 300ms
// interest interval), with the custodian relay 3 SIGKILLed and
// warm-restarted mid-partition. The source streams sequenced data the
// whole time. Acceptance:
//
//   - zero reinforced-class loss: every sequence the source emitted is
//     delivered at the sink after the heal, including those that crossed
//     the custodian's crash (its journal must restore them);
//   - zero duplicate deliveries: hop-by-hop custody transfer plus the
//     sink's duplicate suppression keep delivery exactly-once (the
//     sink's -seen-ttl outlives the partition by design);
//   - custody metrics (accepted/released/replayed/shed) are served by
//     every node, and the restarted custodian reports restored items.
//
// Gated behind DIFFUSION_CHAOS=1 like the other live chaos tests.
func TestChaosCustodyLongPartition(t *testing.T) {
	if os.Getenv("DIFFUSION_CHAOS") != "1" {
		t.Skip("set DIFFUSION_CHAOS=1 to run the live chaos test")
	}
	if testing.Short() {
		t.Skip("live chaos test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "diffnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 5
	udp := freeUDPPorts(t, n)
	httpPorts := freeTCPPorts(t, n)
	stateDir := t.TempDir()

	procs := make([]*chaos.Proc, n)
	logs := make([]*lockedBuffer, n)
	for i := 0; i < n; i++ {
		id := i + 1
		var nb []string
		if i > 0 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id-1, udp[i-1]))
		}
		if i < n-1 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id+1, udp[i+1]))
		}
		logs[i] = newLockedBuffer()
		p, err := chaos.Start(chaos.ProcSpec{
			ID:   uint32(id),
			HTTP: fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
			Log:  logs[i],
			Argv: []string{bin,
				"-id", fmt.Sprint(id),
				"-listen", fmt.Sprintf("127.0.0.1:%d", udp[i]),
				"-http", fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
				"-neighbors", strings.Join(nb, ","),
				"-interest-interval", "300ms",
				"-exploratory-interval", "2s",
				"-forward-jitter", "10ms",
				"-heartbeat", "100ms",
				"-suspect-after", "300ms",
				"-dead-after", "600ms",
				"-reliable",
				"-custody-file", filepath.Join(stateDir, fmt.Sprintf("node%d.custody", id)),
				"-seen-ttl", "2m", // must outlive the partition at the sink
				"-state-file", filepath.Join(stateDir, fmt.Sprintf("node%d.state", id)),
				"-drain", "200ms",
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() {
			if p.Alive() {
				p.Kill()
			}
		})
	}
	for i, p := range procs {
		if err := p.WaitHealthy(10 * time.Second); err != nil {
			t.Fatalf("%v\n%s", err, logs[i].String())
		}
	}
	sink, custodian, source := procs[0], procs[2], procs[4]

	if code, resp := chaosPost(t, sink, "/subscribe",
		"type EQ custody-stream, interval IS 1"); code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	code, resp := chaosPost(t, source, "/publish", "type IS custody-stream")
	if code != 200 {
		t.Fatalf("publish: %d %v", code, resp)
	}
	pub := int(resp["handle"].(float64))

	// The source streams one sequenced message per 100ms for the whole
	// test; the source process is never faulted, so every send succeeds
	// and the final counter value is exactly the ground-truth send set.
	var seq atomic.Int64
	stopSend := make(chan struct{})
	sendDone := make(chan struct{})
	go func() {
		defer close(sendDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSend:
				return
			case <-tick.C:
				chaosPostQuiet(source, "/send", fmt.Sprintf(
					`{"publication": %d, "attrs": "sequence IS %d"}`, pub, seq.Add(1)))
			}
		}
	}()
	stopSender := func() int64 {
		select {
		case <-sendDone: // already stopped
		default:
			close(stopSend)
			<-sendDone
		}
		return seq.Load()
	}
	defer stopSender()

	delivered := func() float64 {
		_, dv := chaosGet(t, sink, "/deliveries")
		total, _ := dv["total"].(float64)
		return total
	}
	waitCluster(t, 20*time.Second, "steady delivery before the partition", func() bool {
		return delivered() >= 5
	})

	// --- Partition 2↔3: the sink side goes dark for ~8× the soft-state
	// decay horizon (2.5 × 300ms = 750ms). Custody accumulates on the
	// source side: at 3 until its gradients from 4 decay, then at 4 and
	// the source itself.
	partitionStart := time.Now()
	if err := chaos.Partition(procs[1], custodian); err != nil {
		t.Fatal(err)
	}

	// Let the custodian take custody of a few stranded messages, then
	// SIGKILL it mid-partition. The fsync'd journal is now the only copy
	// of whatever it had accepted (its upstream discharged on ack).
	time.Sleep(2 * time.Second)
	if err := custodian.Kill(); err != nil {
		t.Fatal(err)
	}
	waitCluster(t, 10*time.Second, "node 4 to detect the custodian's death", func() bool {
		return strings.Contains(logs[3].String(), "flight dump (neighbor 3 died)")
	})
	if err := custodian.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := custodian.WaitHealthy(10 * time.Second); err != nil {
		t.Fatalf("%v\n%s", err, logs[2].String())
	}
	if !strings.Contains(logs[2].String(), "custody recovered") {
		t.Fatalf("custodian restart did not restore journal items:\n%s", logs[2].String())
	}

	// Hold the partition until it has lasted 6s total (8× the decay
	// horizon), then heal.
	if rest := 6*time.Second - time.Since(partitionStart); rest > 0 {
		time.Sleep(rest)
	}
	if err := chaos.Heal(procs[1], custodian); err != nil {
		t.Fatal(err)
	}

	// Let the gradients rebuild and the custody chains drain, then stop
	// the stream and require completeness.
	waitCluster(t, 30*time.Second, "delivery to resume after heal", func() bool {
		return delivered() >= 5+float64(seq.Load())/4
	})
	sent := stopSender()

	// Every sequence 1..sent must arrive exactly once. The delivery ring
	// (1024 deep) covers the whole stream at this cadence and duration.
	seqRe := regexp.MustCompile(`sequence IS (\d+)`)
	counts := make(map[int64]int)
	waitCluster(t, 60*time.Second, "all custody to drain to the sink", func() bool {
		_, dv := chaosGet(t, sink, "/deliveries")
		recent, _ := dv["recent"].([]any)
		counts = make(map[int64]int)
		for _, e := range recent {
			attrs, _ := e.(map[string]any)["attrs"].(string)
			m := seqRe.FindStringSubmatch(attrs)
			if m == nil {
				continue
			}
			v, _ := strconv.ParseInt(m[1], 10, 64)
			counts[v]++
		}
		return int64(len(counts)) >= sent
	})
	var missing, dup []int64
	for s := int64(1); s <= sent; s++ {
		switch {
		case counts[s] == 0:
			missing = append(missing, s)
		case counts[s] > 1:
			dup = append(dup, s)
		}
	}
	if len(missing) > 0 {
		t.Errorf("reinforced-class loss: %d of %d sequences missing: %v",
			len(missing), sent, missing)
	}
	if len(dup) > 0 {
		t.Errorf("duplicate deliveries: %v", dup)
	}
	t.Logf("partition %v, %d sequences, %d delivered exactly once",
		time.Since(partitionStart).Round(time.Second), sent, len(counts))

	// Custody metrics on every node; the restarted custodian shows
	// restored journal items and a positive replay count somewhere on the
	// source side proves the store-and-forward path actually ran.
	for i := range procs {
		id := i + 1
		body := promBody(t, httpPorts[i])
		checkPrometheusText(t, body)
		for _, series := range []string{"custody_accepted", "custody_released",
			"custody_replayed", "custody_shed", "custody_queue_len"} {
			if !strings.Contains(string(body),
				fmt.Sprintf(`diffusion_%s{scope="node%d"}`, series, id)) {
				t.Errorf("node %d metrics missing %s", id, series)
			}
		}
		if v := sentValue(t, body,
			fmt.Sprintf(`diffusion_custody_queue_len{scope="node%d"}`, id)); v != 0 {
			t.Errorf("node %d custody queue not drained: %v items", id, v)
		}
	}
	if v := sentValue(t, promBody(t, httpPorts[2]),
		`diffusion_custody_restored{scope="node3"}`); v < 1 {
		t.Errorf("custodian restored gauge = %v, want >= 1", v)
	}
	replays := 0.0
	for _, i := range []int{2, 3, 4} {
		replays += sentValue(t, promBody(t, httpPorts[i]),
			fmt.Sprintf(`diffusion_custody_replayed{scope="node%d"}`, i+1))
	}
	if replays == 0 {
		t.Error("no custody replays recorded on the source side")
	}

	for i, p := range procs {
		if err := p.Terminate(15 * time.Second); err != nil {
			t.Errorf("%v\n%s", err, logs[i].String())
		}
	}
}
