package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"diffusion/internal/chaos"
)

// TestClusterEndToEnd is the multi-process integration test: it builds the
// diffnode binary, spawns a 5-node line topology over loopback UDP, drives
// the quickstart pub/sub workload through the HTTP control plane, and
// asserts delivery, live metrics on every node, and clean SIGTERM exits.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "diffnode")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const n = 5
	udp := freeUDPPorts(t, n)
	httpPorts := freeTCPPorts(t, n)

	// Line topology 1-2-3-4-5: node i's neighbors are i-1 and i+1.
	procs := make([]*nodeProc, n)
	for i := 0; i < n; i++ {
		id := i + 1
		var nb []string
		if i > 0 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id-1, udp[i-1]))
		}
		if i < n-1 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id+1, udp[i+1]))
		}
		procs[i] = spawnNode(t, bin, id, udp[i], httpPorts[i], strings.Join(nb, ","))
	}
	for _, p := range procs {
		p.waitHealthy(t)
	}

	sink, source := procs[0], procs[n-1]

	// Quickstart workload: the sink subscribes, the source publishes.
	if code, resp := sink.post(t, "/subscribe",
		"type EQ four-legged-animal-search, interval IS 1"); code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	code, resp := source.post(t, "/publish", "type IS four-legged-animal-search")
	if code != 200 {
		t.Fatalf("publish: %d %v", code, resp)
	}
	pub := int(resp["handle"].(float64))

	// Wait for the sink's interest to propagate the length of the line and
	// install a gradient entry at the source.
	waitCluster(t, 10*time.Second, "interest to reach source", func() bool {
		code, st := source.get(t, "/state")
		return code == 200 && st["interest_entries"].(float64) >= 1
	})

	// Send the event stream. The first send is exploratory (flood +
	// reinforcement), the rest follow the reinforced path.
	const events = 20
	for i := 0; i < events; i++ {
		code, resp := source.post(t, "/send",
			fmt.Sprintf(`{"publication": %d, "attrs": "sequence IS %d"}`, pub, i))
		if code != 200 {
			t.Fatalf("send %d: %d %v", i, code, resp)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// ≥90% of distinct events must arrive at the sink on lossless loopback.
	// "sequence" is a well-known pre-registered key, so its name survives
	// crossing processes (app-specific keys would need the config's "keys"
	// list — the paper's out-of-band key coordination).
	seqRe := regexp.MustCompile(`sequence IS (\d+)`)
	var got map[string]bool
	waitCluster(t, 10*time.Second, "event delivery at sink", func() bool {
		_, dv := sink.get(t, "/deliveries")
		got = map[string]bool{}
		recent, _ := dv["recent"].([]any)
		for _, e := range recent {
			m := seqRe.FindStringSubmatch(e.(map[string]any)["attrs"].(string))
			if m != nil {
				got[m[1]] = true
			}
		}
		return len(got) >= events*9/10
	})
	t.Logf("sink delivered %d/%d distinct events", len(got), events)

	// Every node must serve valid, non-empty Prometheus metrics showing it
	// moved datagrams.
	for _, p := range procs {
		resp, err := http.Get(p.url("/metrics"))
		if err != nil {
			t.Fatalf("node %d metrics: %v", p.id, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || len(body) == 0 {
			t.Fatalf("node %d metrics: %d (%d bytes)", p.id, resp.StatusCode, len(body))
		}
		checkPrometheusText(t, body)
		if !bytes.Contains(body, []byte(fmt.Sprintf(`diffusion_transport_sent{scope="node%d"}`, p.id))) {
			t.Errorf("node %d metrics missing transport_sent", p.id)
		}
		if sentValue(t, body, fmt.Sprintf(`diffusion_transport_sent{scope="node%d"}`, p.id)) == 0 {
			t.Errorf("node %d reports zero datagrams sent", p.id)
		}
	}

	// SIGTERM each node; all must exit cleanly (code 0) within the window.
	for _, p := range procs {
		p.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range procs {
		select {
		case <-p.exited:
			if p.exitErr != nil {
				t.Errorf("node %d exit: %v\n%s", p.id, p.exitErr, p.log.String())
			}
		case <-time.After(15 * time.Second):
			p.cmd.Process.Kill()
			t.Errorf("node %d did not exit on SIGTERM\n%s", p.id, p.log.String())
		}
	}
}

// nodeProc is one spawned diffnode process.
type nodeProc struct {
	id       int
	httpPort int
	cmd      *exec.Cmd
	log      *lockedBuffer
	// exited closes when Wait returns; exitErr is valid after that.
	exited  chan struct{}
	exitErr error
}

// lockedBuffer serializes writes from the child pipe against reads from
// test failure paths.
type lockedBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newLockedBuffer() *lockedBuffer {
	b := &lockedBuffer{mu: make(chan struct{}, 1)}
	b.mu <- struct{}{}
	return b
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

// spawnNode starts one diffnode with compressed protocol timings and
// registers cleanup.
func spawnNode(t *testing.T, bin string, id, udpPort, httpPort int, neighbors string) *nodeProc {
	t.Helper()
	p := &nodeProc{id: id, httpPort: httpPort, log: newLockedBuffer(), exited: make(chan struct{})}
	p.cmd = exec.Command(bin,
		"-id", fmt.Sprint(id),
		"-listen", fmt.Sprintf("127.0.0.1:%d", udpPort),
		"-http", fmt.Sprintf("127.0.0.1:%d", httpPort),
		"-neighbors", neighbors,
		"-interest-interval", "300ms",
		"-exploratory-interval", "10s",
		"-forward-jitter", "10ms",
		"-drain", "200ms",
	)
	p.cmd.Stdout = p.log
	p.cmd.Stderr = p.log
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start node %d: %v", id, err)
	}
	go func() { p.exitErr = p.cmd.Wait(); close(p.exited) }()
	t.Cleanup(func() {
		select {
		case <-p.exited:
		default:
			p.cmd.Process.Kill()
			<-p.exited
		}
	})
	return p
}

func (p *nodeProc) url(path string) string {
	return fmt.Sprintf("http://127.0.0.1:%d%s", p.httpPort, path)
}

func (p *nodeProc) post(t *testing.T, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(p.url(path), "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("node %d POST %s: %v\n%s", p.id, path, err, p.log.String())
	}
	defer resp.Body.Close()
	return decodeJSON(resp)
}

func (p *nodeProc) get(t *testing.T, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(p.url(path))
	if err != nil {
		t.Fatalf("node %d GET %s: %v\n%s", p.id, path, err, p.log.String())
	}
	defer resp.Body.Close()
	return decodeJSON(resp)
}

func decodeJSON(resp *http.Response) (int, map[string]any) {
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	_ = json.Unmarshal(raw, &out)
	return resp.StatusCode, out
}

// waitHealthy polls /healthz until the control plane answers.
func (p *nodeProc) waitHealthy(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.url("/healthz"))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never became healthy\n%s", p.id, p.log.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitCluster polls cond until it holds or the deadline passes.
func waitCluster(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// sentValue extracts one sample's value from an exposition.
func sentValue(t *testing.T, body []byte, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v)
			return v
		}
	}
	t.Errorf("series %s not found", series)
	return 0
}

// freeUDPPorts reserves n distinct loopback UDP ports and releases them
// for the children to rebind (the usual pick-then-spawn race, acceptable
// on a quiet test host; tests that cannot tolerate it use -listen :0
// with an address file instead, like cmd/difffleet does).
func freeUDPPorts(t *testing.T, n int) []int {
	t.Helper()
	ports, err := chaos.FreePorts("udp", n)
	if err != nil {
		t.Fatal(err)
	}
	return ports
}

// freeTCPPorts reserves n distinct loopback TCP ports the same way.
func freeTCPPorts(t *testing.T, n int) []int {
	t.Helper()
	ports, err := chaos.FreePorts("tcp", n)
	if err != nil {
		t.Fatal(err)
	}
	return ports
}
