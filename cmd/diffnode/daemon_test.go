package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startTestDaemon boots a daemon on ephemeral loopback ports and registers
// its shutdown with the test.
func startTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HTTP == "" {
		cfg.HTTP = "127.0.0.1:0"
	}
	d, err := startDaemon(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Shutdown() })
	return d
}

// ctl issues one control-plane request and decodes the JSON response.
func ctl(t *testing.T, d *Daemon, method, path, body string) (int, map[string]any) {
	t.Helper()
	url := fmt.Sprintf("http://%s%s", d.HTTPAddr(), path)
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 {
		// Mux-level rejections (405 etc) are plain text; ignore those.
		_ = json.Unmarshal(raw, &out)
	}
	return resp.StatusCode, out
}

// TestControlPlaneLifecycle drives the full handle lifecycle over HTTP on a
// single node: subscribe, publish, send-to-self delivery, state, withdraw.
func TestControlPlaneLifecycle(t *testing.T) {
	cfg := Config{ID: 1, Drain: 10 * time.Millisecond,
		InterestInterval: 100 * time.Millisecond, ForwardJitter: time.Millisecond}
	d := startTestDaemon(t, cfg)

	code, resp := ctl(t, d, "POST", "/subscribe", "type EQ ping, interval IS 1")
	if code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	sub := int(resp["handle"].(float64))
	if !strings.Contains(resp["attrs"].(string), `type EQ "ping"`) {
		t.Fatalf("subscribe echo = %v", resp["attrs"])
	}

	code, resp = ctl(t, d, "POST", "/publish", "type IS ping")
	if code != 200 {
		t.Fatalf("publish: %d %v", code, resp)
	}
	pub := int(resp["handle"].(float64))

	// Local subscription + local publication: a send delivers to self once
	// the subscription's interest entry has installed (the interest runs
	// through the jittered dispatch chain, so retry until it lands).
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, resp = ctl(t, d, "POST", "/send",
			fmt.Sprintf(`{"publication": %d, "attrs": "seq IS 1", "exploratory": true}`, pub))
		if code != 200 {
			t.Fatalf("send: %d %v", code, resp)
		}
		code, resp = ctl(t, d, "GET", "/deliveries", "")
		if code == 200 && resp["total"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no delivery: %v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	recent := resp["recent"].([]any)
	first := recent[0].(map[string]any)
	if !strings.Contains(first["attrs"].(string), "seq IS 1") {
		t.Fatalf("delivered attrs = %v", first["attrs"])
	}

	code, resp = ctl(t, d, "GET", "/state", "")
	if code != 200 || len(resp["subscriptions"].([]any)) != 1 || len(resp["publications"].([]any)) != 1 {
		t.Fatalf("state: %d %v", code, resp)
	}

	if code, resp = ctl(t, d, "POST", "/unsubscribe", fmt.Sprintf(`{"handle": %d}`, sub)); code != 200 {
		t.Fatalf("unsubscribe: %d %v", code, resp)
	}
	if code, resp = ctl(t, d, "POST", "/unpublish", fmt.Sprintf(`{"handle": %d}`, pub)); code != 200 {
		t.Fatalf("unpublish: %d %v", code, resp)
	}
	// Withdrawn handles now 404.
	if code, _ = ctl(t, d, "POST", "/unsubscribe", fmt.Sprintf(`{"handle": %d}`, sub)); code != 404 {
		t.Fatalf("double unsubscribe: %d", code)
	}
	if code, _ = ctl(t, d, "POST", "/send", fmt.Sprintf(`{"publication": %d, "attrs": ""}`, pub)); code != 404 {
		t.Fatalf("send on dead publication: %d", code)
	}
}

// TestControlPlaneRejectsBadInput checks malformed bodies come back 4xx
// with a JSON error, never 500.
func TestControlPlaneRejectsBadInput(t *testing.T) {
	d := startTestDaemon(t, Config{ID: 1, Drain: 10 * time.Millisecond})
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/subscribe", "type BETWEEN 1"},
		{"POST", "/publish", "task EQ_ANY extra"},
		{"POST", "/send", "not json"},
		{"POST", "/send", `{"publication": 1, "attrs": "x NOPE 3"}`},
		{"POST", "/unsubscribe", "{"},
	}
	for _, c := range cases {
		code, resp := ctl(t, d, c.method, c.path, c.body)
		if code < 400 || code >= 500 {
			t.Errorf("%s %s %q: code %d, want 4xx", c.method, c.path, c.body, code)
		}
		if _, ok := resp["error"]; !ok {
			t.Errorf("%s %s %q: no error field: %v", c.method, c.path, c.body, resp)
		}
	}
	// Wrong method gets rejected by the mux.
	code, _ := ctl(t, d, "GET", "/subscribe", "")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /subscribe: %d, want 405", code)
	}
}

// TestMetricsEndpoint checks /metrics serves valid, non-empty Prometheus
// text including transport and core series.
func TestMetricsEndpoint(t *testing.T) {
	d := startTestDaemon(t, Config{ID: 7, Drain: 10 * time.Millisecond,
		InterestInterval: 50 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ probe, interval IS 1"}})
	time.Sleep(150 * time.Millisecond) // let a couple of interest refreshes run

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	checkPrometheusText(t, body)
	for _, want := range []string{
		`diffusion_core_sent_interest{scope="node7"}`,
		`diffusion_transport_sent{scope="node7"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// promSample matches one Prometheus text sample line: the scope label
// plus any extra labels (per-neighbor series carry peer="N").
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*\{scope="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\} (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// checkPrometheusText validates every line of a Prometheus exposition.
func checkPrometheusText(t *testing.T, body []byte) {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("bad sample line %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Error("no samples in exposition")
	}
}

// TestFiltersFromConfig installs each named filter at boot and checks an
// unknown name is rejected.
func TestFiltersFromConfig(t *testing.T) {
	startTestDaemon(t, Config{ID: 1, Drain: time.Millisecond,
		Filters: []string{"tap", "suppress:type EQ x", "cache"}})

	_, err := startDaemon(Config{ID: 2, Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Filters: []string{"bogus"}}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Fatalf("bogus filter: err = %v", err)
	}
}

// TestShutdownWithdrawsAndStops checks Shutdown withdraws the application
// layer, the control plane stops answering, and no goroutines leak — the
// in-process form of the daemon's clean-SIGTERM guarantee.
// TestSpansEndpoint: a traced node serves its span ring as JSONL — a
// header line with the clock base, then flow-tagged records — and an
// untraced node answers 404.
func TestSpansEndpoint(t *testing.T) {
	cfg := Config{ID: 1, Drain: 10 * time.Millisecond, TraceSample: 1,
		InterestInterval: 100 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ ping, interval IS 1"}, Publish: []string{"type IS ping"}}
	d := startTestDaemon(t, cfg)

	// Drive a self-delivery so the ring holds a complete flow.
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _ := ctl(t, d, "POST", "/send", `{"publication": 1, "attrs": "seq IS 1", "exploratory": true}`)
		if code != 200 {
			t.Fatalf("send: %d", code)
		}
		_, dv := ctl(t, d, "GET", "/deliveries", "")
		if total, _ := dv["total"].(float64); total >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no self-delivery within 2s")
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/spans", d.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/spans: %d %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("/spans served %d lines, want header + spans:\n%s", len(lines), body)
	}
	var hdr struct {
		Node        uint32 `json:"node"`
		Boot        uint32 `json:"boot"`
		StartUnixUS int64  `json:"start_unix_us"`
		Spans       int    `json:"spans"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Node != 1 || hdr.Boot == 0 || hdr.StartUnixUS == 0 || hdr.Spans != len(lines)-1 {
		t.Fatalf("header %+v (lines %d)", hdr, len(lines))
	}
	sawFlow, sawDeliver := false, false
	for _, line := range lines[1:] {
		var rec struct {
			Flow uint16 `json:"flow"`
			Verb string `json:"verb"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("span line %q: %v", line, err)
		}
		if rec.Flow != 0 {
			sawFlow = true
		}
		if rec.Verb == "deliver" {
			sawDeliver = true
		}
	}
	if !sawFlow || !sawDeliver {
		t.Errorf("spans missing flow tags (%v) or a deliver event (%v):\n%s", sawFlow, sawDeliver, body)
	}

	// Tracing off: 404.
	off := startTestDaemon(t, Config{ID: 2, Drain: time.Millisecond,
		InterestInterval: time.Second, ForwardJitter: time.Millisecond})
	if code, _ := ctl(t, off, "GET", "/spans", ""); code != 404 {
		t.Errorf("/spans without tracing: %d, want 404", code)
	}
}

// TestPprofOptIn: the profiling endpoints exist only behind the flag.
func TestPprofOptIn(t *testing.T) {
	on := startTestDaemon(t, Config{ID: 1, Drain: time.Millisecond, Pprof: true,
		InterestInterval: time.Second, ForwardJitter: time.Millisecond})
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", on.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index with -pprof: %d, want 200", resp.StatusCode)
	}

	off := startTestDaemon(t, Config{ID: 2, Drain: time.Millisecond,
		InterestInterval: time.Second, ForwardJitter: time.Millisecond})
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/", off.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof index reachable without -pprof")
	}
}

// TestShutdownDumpsFlightRecorder: the drain path must dump the flight
// ring to the log even when no fault ever fired.
func TestShutdownDumpsFlightRecorder(t *testing.T) {
	log := newLockedBuffer()
	d, err := startDaemon(Config{ID: 9, Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Drain: time.Millisecond, InterestInterval: time.Second,
		ForwardJitter: time.Millisecond}, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "flight dump (shutdown drain)") {
		t.Errorf("shutdown log has no flight dump:\n%s", log.String())
	}
}

func TestShutdownWithdrawsAndStops(t *testing.T) {
	base := runtime.NumGoroutine()
	d := startTestDaemon(t, Config{ID: 3, Drain: 20 * time.Millisecond,
		InterestInterval: 50 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ a"}, Publish: []string{"type IS a"},
		Filters: []string{"suppress"}})
	addr := d.HTTPAddr().String()

	if err := d.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := d.Shutdown(); err != nil { // idempotent
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("control plane still answering after shutdown")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
