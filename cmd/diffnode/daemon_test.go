package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startTestDaemon boots a daemon on ephemeral loopback ports and registers
// its shutdown with the test.
func startTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.HTTP == "" {
		cfg.HTTP = "127.0.0.1:0"
	}
	d, err := startDaemon(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Shutdown() })
	return d
}

// ctl issues one control-plane request and decodes the JSON response.
func ctl(t *testing.T, d *Daemon, method, path, body string) (int, map[string]any) {
	t.Helper()
	url := fmt.Sprintf("http://%s%s", d.HTTPAddr(), path)
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 {
		// Mux-level rejections (405 etc) are plain text; ignore those.
		_ = json.Unmarshal(raw, &out)
	}
	return resp.StatusCode, out
}

// TestControlPlaneLifecycle drives the full handle lifecycle over HTTP on a
// single node: subscribe, publish, send-to-self delivery, state, withdraw.
func TestControlPlaneLifecycle(t *testing.T) {
	cfg := Config{ID: 1, Drain: 10 * time.Millisecond,
		InterestInterval: 100 * time.Millisecond, ForwardJitter: time.Millisecond}
	d := startTestDaemon(t, cfg)

	code, resp := ctl(t, d, "POST", "/subscribe", "type EQ ping, interval IS 1")
	if code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	sub := int(resp["handle"].(float64))
	if !strings.Contains(resp["attrs"].(string), `type EQ "ping"`) {
		t.Fatalf("subscribe echo = %v", resp["attrs"])
	}

	code, resp = ctl(t, d, "POST", "/publish", "type IS ping")
	if code != 200 {
		t.Fatalf("publish: %d %v", code, resp)
	}
	pub := int(resp["handle"].(float64))

	// Local subscription + local publication: a send delivers to self once
	// the subscription's interest entry has installed (the interest runs
	// through the jittered dispatch chain, so retry until it lands).
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, resp = ctl(t, d, "POST", "/send",
			fmt.Sprintf(`{"publication": %d, "attrs": "seq IS 1", "exploratory": true}`, pub))
		if code != 200 {
			t.Fatalf("send: %d %v", code, resp)
		}
		code, resp = ctl(t, d, "GET", "/deliveries", "")
		if code == 200 && resp["total"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no delivery: %v", resp)
		}
		time.Sleep(20 * time.Millisecond)
	}
	recent := resp["recent"].([]any)
	first := recent[0].(map[string]any)
	if !strings.Contains(first["attrs"].(string), "seq IS 1") {
		t.Fatalf("delivered attrs = %v", first["attrs"])
	}

	code, resp = ctl(t, d, "GET", "/state", "")
	if code != 200 || len(resp["subscriptions"].([]any)) != 1 || len(resp["publications"].([]any)) != 1 {
		t.Fatalf("state: %d %v", code, resp)
	}

	if code, resp = ctl(t, d, "POST", "/unsubscribe", fmt.Sprintf(`{"handle": %d}`, sub)); code != 200 {
		t.Fatalf("unsubscribe: %d %v", code, resp)
	}
	if code, resp = ctl(t, d, "POST", "/unpublish", fmt.Sprintf(`{"handle": %d}`, pub)); code != 200 {
		t.Fatalf("unpublish: %d %v", code, resp)
	}
	// Withdrawn handles now 404.
	if code, _ = ctl(t, d, "POST", "/unsubscribe", fmt.Sprintf(`{"handle": %d}`, sub)); code != 404 {
		t.Fatalf("double unsubscribe: %d", code)
	}
	if code, _ = ctl(t, d, "POST", "/send", fmt.Sprintf(`{"publication": %d, "attrs": ""}`, pub)); code != 404 {
		t.Fatalf("send on dead publication: %d", code)
	}
}

// TestControlPlaneRejectsBadInput checks malformed bodies come back 4xx
// with a JSON error, never 500.
func TestControlPlaneRejectsBadInput(t *testing.T) {
	d := startTestDaemon(t, Config{ID: 1, Drain: 10 * time.Millisecond})
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/subscribe", "type BETWEEN 1"},
		{"POST", "/publish", "task EQ_ANY extra"},
		{"POST", "/send", "not json"},
		{"POST", "/send", `{"publication": 1, "attrs": "x NOPE 3"}`},
		{"POST", "/unsubscribe", "{"},
	}
	for _, c := range cases {
		code, resp := ctl(t, d, c.method, c.path, c.body)
		if code < 400 || code >= 500 {
			t.Errorf("%s %s %q: code %d, want 4xx", c.method, c.path, c.body, code)
		}
		if _, ok := resp["error"]; !ok {
			t.Errorf("%s %s %q: no error field: %v", c.method, c.path, c.body, resp)
		}
	}
	// Wrong method gets rejected by the mux.
	code, _ := ctl(t, d, "GET", "/subscribe", "")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET /subscribe: %d, want 405", code)
	}
}

// TestMetricsEndpoint checks /metrics serves valid, non-empty Prometheus
// text including transport and core series.
func TestMetricsEndpoint(t *testing.T) {
	d := startTestDaemon(t, Config{ID: 7, Drain: 10 * time.Millisecond,
		InterestInterval: 50 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ probe, interval IS 1"}})
	time.Sleep(150 * time.Millisecond) // let a couple of interest refreshes run

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", d.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	checkPrometheusText(t, body)
	for _, want := range []string{
		`diffusion_core_sent_interest{scope="node7"}`,
		`diffusion_transport_sent{scope="node7"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// promSample matches one Prometheus text sample line.
var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*\{scope="[^"]*"\} (NaN|[+-]Inf|[-+0-9.eE]+)$`)

// checkPrometheusText validates every line of a Prometheus exposition.
func checkPrometheusText(t *testing.T, body []byte) {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("bad sample line %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Error("no samples in exposition")
	}
}

// TestFiltersFromConfig installs each named filter at boot and checks an
// unknown name is rejected.
func TestFiltersFromConfig(t *testing.T) {
	startTestDaemon(t, Config{ID: 1, Drain: time.Millisecond,
		Filters: []string{"tap", "suppress:type EQ x", "cache"}})

	_, err := startDaemon(Config{ID: 2, Listen: "127.0.0.1:0", HTTP: "127.0.0.1:0",
		Filters: []string{"bogus"}}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Fatalf("bogus filter: err = %v", err)
	}
}

// TestShutdownWithdrawsAndStops checks Shutdown withdraws the application
// layer, the control plane stops answering, and no goroutines leak — the
// in-process form of the daemon's clean-SIGTERM guarantee.
func TestShutdownWithdrawsAndStops(t *testing.T) {
	base := runtime.NumGoroutine()
	d := startTestDaemon(t, Config{ID: 3, Drain: 20 * time.Millisecond,
		InterestInterval: 50 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ a"}, Publish: []string{"type IS a"},
		Filters: []string{"suppress"}})
	addr := d.HTTPAddr().String()

	if err := d.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := d.Shutdown(); err != nil { // idempotent
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Error("control plane still answering after shutdown")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
