// Command diffnode is a deployable directed-diffusion node: the same
// protocol core the simulator runs, driven by wall-clock timers
// (internal/rt) over UDP datagrams (internal/transport), with an HTTP
// control plane for the application layer.
//
// A node is configured with a JSON file (-config) or flags:
//
//	diffnode -id 1 -listen 127.0.0.1:7001 -http 127.0.0.1:8001 \
//	    -neighbors 2=127.0.0.1:7002
//
// Instead of a static neighbor table, a node can join a running mesh by
// discovery: `-seed HOST:PORT` announces to an existing member and
// learns the rest by gossip (the first node of a fresh mesh passes
// `-discover` and just listens). Static entries and discovery compose —
// configured neighbors are pinned, discovered ones come and go.
//
// Control plane:
//
//	POST /subscribe    body: attribute formals ("type EQ x, interval IS 5")
//	POST /unsubscribe  body: {"handle": N}
//	POST /publish      body: attribute actuals
//	POST /unpublish    body: {"handle": N}
//	POST /send         body: {"publication": N, "attrs": "...", "exploratory": false}
//	GET  /deliveries   locally delivered data (?since=SEQ)
//	GET  /state        live subscriptions/publications and table sizes
//	GET  /metrics      telemetry in Prometheus text format
//	GET  /healthz      liveness incl. per-neighbor failure-detector state
//	                   (503 when partitioned from every configured neighbor)
//	GET  /neighbors    membership table: every neighbor and discovery
//	                   record with origin, liveness state and RTT
//	                   (cmd/diffscope -walk crawls the mesh through it)
//	GET  /custody      custody-transfer introspection: queue depth and
//	                   counters, journal stats, pending offers
//	POST /chaos        body: {"loss": P, "blocked": [ID, ...]} — live
//	                   transport impairment for fault experiments
//	GET  /spans        flight-path span ring as JSONL (requires
//	                   -trace-sample > 0; scraped by cmd/diffscope)
//	GET  /debug/pprof/ net/http/pprof profiling (requires -pprof)
//
// SIGTERM/SIGINT triggers a graceful shutdown: the application layer is
// withdrawn (unpublish + unsubscribe, stopping interest refresh so
// upstream gradients age out), forwarding continues for the drain window,
// then the sockets and the event loop stop.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

func main() {
	var (
		configPath = flag.String("config", "", "JSON config file (flags override)")
		id         = flag.Uint("id", 0, "node ID (nonzero)")
		listen     = flag.String("listen", "", "UDP listen address for diffusion traffic")
		httpAddr   = flag.String("http", "", "HTTP control-plane listen address")
		neighbors  = flag.String("neighbors", "", "static neighbor table: ID=HOST:PORT,... (fully overrides the config file's table; empty clears it)")
		seeds      = flag.String("seed", "", "comma-separated UDP addresses of running mesh members to join through (enables discovery)")
		discover   = flag.Bool("discover", false, "enable neighbor discovery without seeds (the first node of a fresh mesh)")
		degreeCap  = flag.Int("degree-cap", 0, "max neighbors, configured + discovered (0: 8)")
		announceIv = flag.Duration("announce-interval", 0, "discovery announce period (0: 1s)")
		energyLvl  = flag.Float64("energy", 0, "advertised energy level in (0,1], the cluster-head tiebreak (0: 1.0)")
		advertise  = flag.String("advertise", "", "UDP address announced to peers (default: the bound address)")
		addrFile   = flag.String("addr-file", "", "write {id,udp,http} JSON here once the sockets bind (for orchestrators using :0)")
		keys       = flag.String("keys", "", "comma-separated application attribute keys to pre-register, in order")
		subscribe  = flag.String("subscribe", "", "attribute formals to subscribe at boot")
		publish    = flag.String("publish", "", "attribute actuals to publish at boot")
		filtersF   = flag.String("filters", "", "semicolon-separated filters: tap, suppress, cache (optionally name:<attrs>)")
		seed       = flag.Int64("jitter-seed", 0, "jitter seed (default: node ID)")
		interestIv = flag.Duration("interest-interval", 0, "interest refresh period (0: paper default)")
		explIv     = flag.Duration("exploratory-interval", 0, "exploratory data period (0: paper default)")
		jitter     = flag.Duration("forward-jitter", 0, "broadcast forwarding jitter (0: paper default)")
		loss       = flag.Float64("loss", 0, "injected send loss probability [0,1)")
		latency    = flag.Duration("latency", 0, "injected send latency")
		heartbeat  = flag.Duration("heartbeat", 0, "neighbor heartbeat period (0: 1s default, negative: disable failure detection)")
		suspectAf  = flag.Duration("suspect-after", 0, "silence marking a neighbor suspect (0: 3x heartbeat)")
		deadAf     = flag.Duration("dead-after", 0, "silence marking a neighbor dead (0: 8x heartbeat)")
		reliable   = flag.Bool("reliable", false, "acknowledged unicast with retransmission")
		relRTO     = flag.Duration("reliable-rto", 0, "initial retransmission timeout (0: 200ms default)")
		custodyOn  = flag.Bool("custody", false, "disruption-tolerant custody transfer for reinforced data")
		custFile   = flag.String("custody-file", "", "fsync'd custody journal (implies -custody; custody survives SIGKILL)")
		custLimit  = flag.Int("custody-limit", 0, "custody queue bound (implies -custody; 0: 1024)")
		seenTTL    = flag.Duration("seen-ttl", 0, "duplicate-suppression horizon (0: 2m; raise past the longest expected partition)")
		energy     = flag.Bool("energy-aware", false, "energy-aware reinforcement: spread load across exploratory deliverers")
		traceSamp  = flag.Float64("trace-sample", 0, "flight-path tracing sample probability [0,1]; spans served at GET /spans")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof endpoints under /debug/pprof/ on the control plane")
		stateFile  = flag.String("state-file", "", "persist application state here and warm-restart from it")
		drain      = flag.Duration("drain", 0, "shutdown drain window (default 500ms)")
	)
	flag.Parse()
	neighborsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "neighbors" {
			neighborsSet = true
		}
	})

	cfg, err := buildConfig(*configPath, flagOverrides{
		id: uint32(*id), listen: *listen, http: *httpAddr,
		neighbors: *neighbors, neighborsSet: neighborsSet,
		seeds: *seeds, discover: *discover, degreeCap: *degreeCap,
		announceInterval: *announceIv, energy: *energyLvl,
		advertise: *advertise, addrFile: *addrFile,
		keys:      *keys,
		subscribe: *subscribe, publish: *publish, filters: *filtersF, seed: *seed,
		interestInterval: *interestIv, exploratoryInterval: *explIv,
		forwardJitter: *jitter, loss: *loss, latency: *latency,
		heartbeat: *heartbeat, suspectAfter: *suspectAf, deadAfter: *deadAf,
		reliable: *reliable, reliableRTO: *relRTO,
		custody: *custodyOn, custodyFile: *custFile, custodyLimit: *custLimit,
		seenTTL: *seenTTL, energyAware: *energy,
		traceSample: *traceSamp, pprof: *pprofOn,
		stateFile: *stateFile, drain: *drain,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d, err := startDaemon(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	signal.Stop(sig)
	fmt.Fprintf(os.Stderr, "diffnode %d: %v, shutting down\n", cfg.ID, s)
	if err := d.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// flagOverrides carries the flag values into config assembly; zero values
// leave the file's settings alone.
type flagOverrides struct {
	id                  uint32
	listen, http        string
	neighbors, keys     string
	neighborsSet        bool // -neighbors was given, even if empty (clears the table)
	seeds               string
	discover            bool
	degreeCap           int
	announceInterval    time.Duration
	energy              float64
	advertise, addrFile string
	subscribe, publish  string
	filters             string
	seed                int64
	interestInterval    time.Duration
	exploratoryInterval time.Duration
	forwardJitter       time.Duration
	loss                float64
	latency             time.Duration
	heartbeat           time.Duration
	suspectAfter        time.Duration
	deadAfter           time.Duration
	reliable            bool
	reliableRTO         time.Duration
	custody             bool
	custodyFile         string
	custodyLimit        int
	seenTTL             time.Duration
	energyAware         bool
	traceSample         float64
	pprof               bool
	stateFile           string
	drain               time.Duration
}

// buildConfig loads the optional config file and applies flag overrides.
func buildConfig(path string, f flagOverrides) (Config, error) {
	var cfg Config
	if path != "" {
		c, err := loadConfig(path)
		if err != nil {
			return cfg, err
		}
		cfg = c
	}
	if f.id != 0 {
		cfg.ID = f.id
	}
	if f.listen != "" {
		cfg.Listen = f.listen
	}
	if f.http != "" {
		cfg.HTTP = f.http
	}
	if f.neighborsSet {
		// The flag is the whole table, not a merge into the file's: an
		// operator overriding the topology must not inherit stale entries,
		// and an explicitly empty -neighbors clears the static table (a
		// discovery-only node driven from a shared config file).
		nb, err := parseNeighbors(f.neighbors)
		if err != nil {
			return cfg, err
		}
		cfg.Neighbors = nb
	}
	if f.seeds != "" {
		cfg.Seeds = splitList(f.seeds, ',')
	}
	if f.discover {
		cfg.Discover = true
	}
	if f.degreeCap != 0 {
		cfg.DegreeCap = f.degreeCap
	}
	if f.announceInterval != 0 {
		cfg.AnnounceInterval = f.announceInterval
	}
	if f.energy != 0 {
		cfg.Energy = f.energy
	}
	if f.advertise != "" {
		cfg.Advertise = f.advertise
	}
	if f.addrFile != "" {
		cfg.AddrFile = f.addrFile
	}
	if f.keys != "" {
		cfg.Keys = append(cfg.Keys, splitList(f.keys, ',')...)
	}
	if f.subscribe != "" {
		cfg.Subscribe = append(cfg.Subscribe, f.subscribe)
	}
	if f.publish != "" {
		cfg.Publish = append(cfg.Publish, f.publish)
	}
	if f.filters != "" {
		cfg.Filters = append(cfg.Filters, splitList(f.filters, ';')...)
	}
	if f.seed != 0 {
		cfg.Seed = f.seed
	}
	if f.interestInterval != 0 {
		cfg.InterestInterval = f.interestInterval
	}
	if f.exploratoryInterval != 0 {
		cfg.ExploratoryInterval = f.exploratoryInterval
	}
	if f.forwardJitter != 0 {
		cfg.ForwardJitter = f.forwardJitter
	}
	if f.loss != 0 {
		cfg.Loss = f.loss
	}
	if f.latency != 0 {
		cfg.Latency = f.latency
	}
	if f.heartbeat != 0 {
		cfg.Heartbeat = f.heartbeat
	}
	if f.suspectAfter != 0 {
		cfg.SuspectAfter = f.suspectAfter
	}
	if f.deadAfter != 0 {
		cfg.DeadAfter = f.deadAfter
	}
	if f.reliable {
		cfg.Reliable = true
	}
	if f.reliableRTO != 0 {
		cfg.ReliableRTO = f.reliableRTO
	}
	if f.custody {
		cfg.Custody = true
	}
	if f.custodyFile != "" {
		cfg.CustodyFile = f.custodyFile
	}
	if f.custodyLimit != 0 {
		cfg.CustodyLimit = f.custodyLimit
	}
	if f.seenTTL != 0 {
		cfg.SeenTTL = f.seenTTL
	}
	if f.energyAware {
		cfg.EnergyAware = true
	}
	if f.traceSample != 0 {
		cfg.TraceSample = f.traceSample
	}
	if f.pprof {
		cfg.Pprof = true
	}
	if f.stateFile != "" {
		cfg.StateFile = f.stateFile
	}
	if f.drain != 0 {
		cfg.Drain = f.drain
	}
	// A node with neither a static table nor discovery would sit deaf
	// forever; catch the misconfiguration at the CLI instead of booting a
	// useless process. (In-process embedders may still run standalone
	// single-node daemons; this check guards the command line only.)
	if len(cfg.Neighbors) == 0 && !cfg.discoveryEnabled() {
		return cfg, fmt.Errorf("diffnode: no neighbors and no discovery: set -neighbors, -seed, or -discover")
	}
	return cfg, nil
}

// splitList splits a list flag on sep, trimming blanks. The -filters flag
// uses ';' because filter patterns are attribute vectors, whose clauses
// are comma-separated; -keys uses ','.
func splitList(s string, sep byte) []string {
	var out []string
	for _, f := range strings.Split(s, string(sep)) {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
