package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"diffusion/internal/chaos"
)

// TestChaosKillRelayRecovery is the live-cluster resilience test: a
// 5-process line topology over loopback UDP, reliable links and fast
// failure detection, driven by the internal/chaos harness. It SIGKILLs
// the relay carrying the reinforced path, requires the neighbors'
// failure detectors to notice (flight dumps on their logs), restarts the
// relay from its persisted state file, and requires end-to-end delivery
// to resume within two exploratory intervals of the relay coming back.
// A partition of the sink then proves /healthz turns 503 while isolated
// and the path re-forms after healing; a loss ramp on a relay proves
// the reliable link keeps delivering through 20% loss. Every surviving
// node must serve valid Prometheus metrics including the heartbeat,
// retransmit and recovery series, and every node must exit cleanly on
// SIGTERM (a leaked goroutine would hang the daemon's shutdown).
//
// Gated behind DIFFUSION_CHAOS=1: the test takes tens of wall-clock
// seconds and depends on real timers, so CI runs it in a dedicated job,
// isolated from the unit suite.
func TestChaosKillRelayRecovery(t *testing.T) {
	if os.Getenv("DIFFUSION_CHAOS") != "1" {
		t.Skip("set DIFFUSION_CHAOS=1 to run the live chaos test")
	}
	if testing.Short() {
		t.Skip("live chaos test skipped in -short mode")
	}

	bin := filepath.Join(t.TempDir(), "diffnode")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	const (
		n                = 5
		exploratoryEvery = 2 * time.Second
	)
	udp := freeUDPPorts(t, n)
	httpPorts := freeTCPPorts(t, n)
	stateDir := t.TempDir()

	// Line topology 1(sink)-2-3-4-5(source).
	procs := make([]*chaos.Proc, n)
	logs := make([]*lockedBuffer, n)
	for i := 0; i < n; i++ {
		id := i + 1
		var nb []string
		if i > 0 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id-1, udp[i-1]))
		}
		if i < n-1 {
			nb = append(nb, fmt.Sprintf("%d=127.0.0.1:%d", id+1, udp[i+1]))
		}
		logs[i] = newLockedBuffer()
		p, err := chaos.Start(chaos.ProcSpec{
			ID:   uint32(id),
			HTTP: fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
			Log:  logs[i],
			Argv: []string{bin,
				"-id", fmt.Sprint(id),
				"-listen", fmt.Sprintf("127.0.0.1:%d", udp[i]),
				"-http", fmt.Sprintf("127.0.0.1:%d", httpPorts[i]),
				"-neighbors", strings.Join(nb, ","),
				"-interest-interval", "300ms",
				"-exploratory-interval", exploratoryEvery.String(),
				"-forward-jitter", "10ms",
				"-heartbeat", "100ms",
				"-suspect-after", "300ms",
				"-dead-after", "600ms",
				"-reliable",
				"-state-file", filepath.Join(stateDir, fmt.Sprintf("node%d.state", id)),
				"-drain", "200ms",
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
		t.Cleanup(func() {
			if p.Alive() {
				p.Kill()
			}
		})
	}
	for i, p := range procs {
		if err := p.WaitHealthy(10 * time.Second); err != nil {
			t.Fatalf("%v\n%s", err, logs[i].String())
		}
	}
	sink, relay, source := procs[0], procs[2], procs[4]

	// A canary subscription installed over HTTP on the relay: it lives
	// only in the relay's state file, so its survival across SIGKILL
	// proves the warm restart really restored persisted state.
	if code, resp := chaosPost(t, relay, "/subscribe", "type EQ canary, interval IS 60"); code != 200 {
		t.Fatalf("canary subscribe: %d %v", code, resp)
	}

	// Workload: sink subscribes, source publishes and streams events.
	if code, resp := chaosPost(t, sink, "/subscribe",
		"type EQ four-legged-animal-search, interval IS 1"); code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	code, resp := chaosPost(t, source, "/publish", "type IS four-legged-animal-search")
	if code != 200 {
		t.Fatalf("publish: %d %v", code, resp)
	}
	pub := int(resp["handle"].(float64))

	var seq atomic.Int64
	stopSend := make(chan struct{})
	t.Cleanup(func() { close(stopSend) })
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSend:
				return
			case <-tick.C:
				if !source.Alive() {
					continue
				}
				chaosPostQuiet(source, "/send", fmt.Sprintf(
					`{"publication": %d, "attrs": "sequence IS %d"}`, pub, seq.Add(1)))
			}
		}
	}()

	delivered := func() float64 {
		_, dv := chaosGet(t, sink, "/deliveries")
		total, _ := dv["total"].(float64)
		return total
	}
	waitCluster(t, 20*time.Second, "steady delivery before the fault", func() bool {
		return delivered() >= 5
	})

	// --- Crash fault: SIGKILL the reinforced relay. ---
	if err := relay.Kill(); err != nil {
		t.Fatal(err)
	}
	// Both neighbors must detect the death and dump their flight rings.
	waitCluster(t, 10*time.Second, "flight dumps at the relay's neighbors", func() bool {
		return strings.Contains(logs[1].String(), "flight dump (neighbor 3 died)") &&
			strings.Contains(logs[3].String(), "flight dump (neighbor 3 died)")
	})

	preRestart := delivered()
	if err := relay.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := relay.WaitHealthy(10 * time.Second); err != nil {
		t.Fatalf("%v\n%s", err, logs[2].String())
	}
	restartAt := time.Now()

	// The warm restart restored the canary from the state file (the
	// restarted argv carries no -subscribe flag).
	_, st := chaosGet(t, relay, "/state")
	subs, _ := st["subscriptions"].([]any)
	if len(subs) != 1 || !strings.Contains(
		subs[0].(map[string]any)["attrs"].(string), `type EQ "canary"`) {
		t.Fatalf("relay state after restart = %v\n%s", st, logs[2].String())
	}

	// Acceptance: delivery resumes within two exploratory intervals of
	// the relay coming back.
	waitCluster(t, 2*exploratoryEvery, "delivery to resume after restart", func() bool {
		return delivered() >= preRestart+3
	})
	t.Logf("delivery resumed %v after relay restart", time.Since(restartAt).Round(100*time.Millisecond))

	// --- Partition fault: isolate the sink. ---
	if err := chaos.Partition(sink, procs[1]); err != nil {
		t.Fatal(err)
	}
	waitCluster(t, 10*time.Second, "sink to report isolation via 503", func() bool {
		code, body, err := sink.Healthz()
		return err == nil && code == http.StatusServiceUnavailable && body["isolated"] == true
	})
	if err := chaos.Heal(sink, procs[1]); err != nil {
		t.Fatal(err)
	}
	if err := sink.WaitHealthy(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	healed := delivered()
	waitCluster(t, 2*exploratoryEvery+2*time.Second, "delivery to resume after heal", func() bool {
		return delivered() >= healed+3
	})

	// --- Loss ramp: the reliable link must deliver through 20% loss. ---
	if err := procs[1].LossRamp(0.2, 2, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rampStart := delivered()
	waitCluster(t, 10*time.Second, "delivery under 20% loss", func() bool {
		return delivered() >= rampStart+3
	})
	if err := procs[1].SetLoss(0); err != nil {
		t.Fatal(err)
	}

	// Every node serves valid Prometheus text including the heartbeat,
	// retransmit and recovery series; the restarted relay shows the warm
	// restart; the relay's neighbors counted its death.
	for i := range procs {
		id := i + 1
		httpResp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", httpPorts[i]))
		if err != nil {
			t.Fatalf("node %d metrics: %v", id, err)
		}
		body, _ := io.ReadAll(httpResp.Body)
		httpResp.Body.Close()
		if httpResp.StatusCode != 200 {
			t.Fatalf("node %d metrics: %d", id, httpResp.StatusCode)
		}
		checkPrometheusText(t, body)
		scope := func(name string) string {
			return fmt.Sprintf(`diffusion_%s{scope="node%d"}`, name, id)
		}
		if sentValue(t, body, scope("transport_heartbeats_sent")) == 0 {
			t.Errorf("node %d sent no heartbeats", id)
		}
		if sentValue(t, body, scope("recovery_state_saves")) < 1 {
			t.Errorf("node %d recorded no state saves", id)
		}
		for _, series := range []string{"transport_retransmits", "transport_acks_recv",
			"transport_peer_deaths", "recovery_warm_restart", "core_neighbor_deaths"} {
			if !strings.Contains(string(body), scope(series)) {
				t.Errorf("node %d metrics missing %s", id, series)
			}
		}
	}
	for _, i := range []int{1, 3} { // the dead relay's neighbors
		body := promBody(t, httpPorts[i])
		if sentValue(t, body, fmt.Sprintf(`diffusion_transport_peer_deaths{scope="node%d"}`, i+1)) < 1 {
			t.Errorf("node %d counted no peer deaths", i+1)
		}
	}
	if v := sentValue(t, promBody(t, httpPorts[2]),
		`diffusion_recovery_warm_restart{scope="node3"}`); v != 1 {
		t.Errorf("relay warm_restart gauge = %v, want 1", v)
	}

	// Clean SIGTERM exit on every node: the daemon's shutdown joins every
	// goroutine it started, so a leak shows up as a hung (then killed,
	// hence failed) termination.
	for i, p := range procs {
		if err := p.Terminate(15 * time.Second); err != nil {
			t.Errorf("%v\n%s", err, logs[i].String())
		}
	}
}

// promBody fetches one node's /metrics body.
func promBody(t *testing.T, port int) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://127.0.0.1:%d/metrics", port))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return body
}

// chaosPost / chaosGet issue control-plane calls against a harness proc.
func chaosPost(t *testing.T, p *chaos.Proc, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(chaosURL(p, path), "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("member %d POST %s: %v", p.ID(), path, err)
	}
	defer resp.Body.Close()
	return decodeJSON(resp)
}

// chaosPostQuiet is chaosPost for background senders: errors (e.g. a
// member mid-restart) are swallowed.
func chaosPostQuiet(p *chaos.Proc, path, body string) {
	resp, err := http.Post(chaosURL(p, path), "text/plain", strings.NewReader(body))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func chaosGet(t *testing.T, p *chaos.Proc, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(chaosURL(p, path))
	if err != nil {
		t.Fatalf("member %d GET %s: %v", p.ID(), path, err)
	}
	defer resp.Body.Close()
	return decodeJSON(resp)
}

func chaosURL(p *chaos.Proc, path string) string {
	return fmt.Sprintf("http://%s%s", p.HTTPAddr(), path)
}
