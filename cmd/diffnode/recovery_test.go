package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// readStateFile decodes the persisted state for assertions.
func readStateFile(t *testing.T, path string) persistedState {
	t.Helper()
	st, found, err := loadState(path)
	if err != nil || !found {
		t.Fatalf("state file %s: found=%v err=%v", path, found, err)
	}
	return st
}

// TestWarmRestartFromStateFile drives the crash-recovery cycle in-process:
// boot with application state, watch the state file track control-plane
// mutations, then restart a daemon from the file alone and check it
// resumes the same role.
func TestWarmRestartFromStateFile(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "node1.state")
	cfg := Config{ID: 1, Drain: time.Millisecond, StateFile: stateFile,
		InterestInterval: 100 * time.Millisecond, ForwardJitter: time.Millisecond,
		Subscribe: []string{"type EQ recovery-probe, interval IS 1"},
		Publish:   []string{"type IS recovery-probe"},
		Filters:   []string{"suppress:type EQ recovery-probe"}}
	d := startTestDaemon(t, cfg)

	// Boot wrote the initial snapshot.
	st := readStateFile(t, stateFile)
	if st.ID != 1 || len(st.Subscribe) != 1 || len(st.Publish) != 1 || len(st.Filters) != 1 {
		t.Fatalf("boot snapshot = %+v", st)
	}

	// Control-plane mutations rewrite the file.
	code, resp := ctl(t, d, "POST", "/subscribe", "type EQ second, interval IS 2")
	if code != 200 {
		t.Fatalf("subscribe: %d %v", code, resp)
	}
	if st = readStateFile(t, stateFile); len(st.Subscribe) != 2 {
		t.Fatalf("after subscribe, snapshot subs = %v", st.Subscribe)
	}
	h := int(resp["handle"].(float64))
	if code, _ = ctl(t, d, "POST", "/unsubscribe", fmt.Sprintf(`{"handle": %d}`, h)); code != 200 {
		t.Fatalf("unsubscribe: %d", code)
	}
	if st = readStateFile(t, stateFile); len(st.Subscribe) != 1 {
		t.Fatalf("after unsubscribe, snapshot subs = %v", st.Subscribe)
	}

	// Stop (a graceful stop withdraws the app layer but must leave the
	// snapshot as the last live role), then warm-restart with a config
	// that lists no application state at all.
	d.Shutdown()
	d2 := startTestDaemon(t, Config{ID: 1, Drain: time.Millisecond, StateFile: stateFile,
		InterestInterval: 100 * time.Millisecond, ForwardJitter: time.Millisecond})
	code, state := ctl(t, d2, "GET", "/state", "")
	if code != 200 || len(state["subscriptions"].([]any)) != 1 || len(state["publications"].([]any)) != 1 {
		t.Fatalf("restored state: %d %v", code, state)
	}
	sub := state["subscriptions"].([]any)[0].(map[string]any)["attrs"].(string)
	if !strings.Contains(sub, `type EQ "recovery-probe"`) {
		t.Fatalf("restored subscription = %q", sub)
	}

	// The restart is visible in telemetry.
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", d2.HTTPAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if v := sentValue(t, body, `diffusion_recovery_warm_restart{scope="node1"}`); v != 1 {
		t.Errorf("warm_restart gauge = %v, want 1", v)
	}
	if v := sentValue(t, body, `diffusion_recovery_state_saves{scope="node1"}`); v < 1 {
		t.Errorf("state_saves = %v, want >= 1", v)
	}
	d2.Shutdown()

	// A state file belonging to a different node is ignored: cold boot.
	d3 := startTestDaemon(t, Config{ID: 9, Drain: time.Millisecond, StateFile: stateFile})
	if code, state = ctl(t, d3, "GET", "/state", ""); code != 200 ||
		state["subscriptions"] != nil || state["publications"] != nil {
		t.Fatalf("foreign state file not ignored: %d %v", code, state)
	}
}

// TestStateFileUnreadableIsColdBoot: a corrupt state file must not stop
// the daemon from booting with its config lists, and the bad bytes must
// be quarantined for diagnosis rather than silently overwritten.
func TestStateFileUnreadableIsColdBoot(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "bad.state")
	if err := os.WriteFile(stateFile, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := startTestDaemon(t, Config{ID: 4, Drain: time.Millisecond, StateFile: stateFile,
		Subscribe: []string{"type EQ fallback"}})
	code, state := ctl(t, d, "GET", "/state", "")
	if code != 200 || len(state["subscriptions"].([]any)) != 1 {
		t.Fatalf("cold boot state: %d %v", code, state)
	}
	// The boot save replaced the corrupt file with a valid snapshot.
	if st := readStateFile(t, stateFile); st.ID != 4 || len(st.Subscribe) != 1 {
		t.Fatalf("snapshot after cold boot = %+v", st)
	}
	// The original bytes were moved aside, not lost.
	if b, err := os.ReadFile(stateFile + ".corrupt"); err != nil || string(b) != "not json" {
		t.Fatalf("quarantine file: %q %v", b, err)
	}
}

// TestStateFilePartialJSONQuarantined covers the likeliest real
// corruption: a snapshot torn mid-write (truncated JSON). The daemon must
// quarantine it and boot fresh, not crash-loop on the parse error.
func TestStateFilePartialJSONQuarantined(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "torn.state")
	torn := `{"id": 7, "subscribe": ["type EQ x`
	if err := os.WriteFile(stateFile, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	d := startTestDaemon(t, Config{ID: 7, Drain: time.Millisecond, StateFile: stateFile,
		Publish: []string{"type IS fresh-role"}})
	code, state := ctl(t, d, "GET", "/state", "")
	if code != 200 || state["subscriptions"] != nil || len(state["publications"].([]any)) != 1 {
		t.Fatalf("cold boot after torn snapshot: %d %v", code, state)
	}
	if b, err := os.ReadFile(stateFile + ".corrupt"); err != nil || string(b) != torn {
		t.Fatalf("quarantine file: %q %v", b, err)
	}
	// loadState on the rewritten file sees the fresh role.
	if st := readStateFile(t, stateFile); st.ID != 7 || len(st.Publish) != 1 {
		t.Fatalf("snapshot after cold boot = %+v", st)
	}
}

// TestHealthzZeroNeighbors: a node with no configured neighbors — a
// single-node or not-yet-joined deployment — must answer 200, never the
// "isolated" 503, even with the failure detector running.
func TestHealthzZeroNeighbors(t *testing.T) {
	d := startTestDaemon(t, Config{ID: 11, Drain: time.Millisecond,
		Heartbeat: 25 * time.Millisecond, SuspectAfter: 75 * time.Millisecond,
		DeadAfter: 150 * time.Millisecond})
	// Give the detector a few periods to (incorrectly) declare isolation.
	time.Sleep(300 * time.Millisecond)
	code, resp := ctl(t, d, "GET", "/healthz", "")
	if code != 200 {
		t.Fatalf("healthz with zero neighbors: %d %v", code, resp)
	}
	if iso, ok := resp["isolated"]; ok && iso == true {
		t.Fatalf("zero-neighbor node reported isolated: %v", resp)
	}
}

// TestHealthzLivenessAndChaos wires two in-process daemons with a fast
// failure detector, then uses POST /chaos to partition them: /healthz
// must report the neighbor's decline to dead and answer 503 while the
// node is isolated, and recover to 200/alive once the partition lifts.
func TestHealthzLivenessAndChaos(t *testing.T) {
	udp := freeUDPPorts(t, 2)
	mk := func(id, peer int, peerPort int) Config {
		return Config{ID: uint32(id), Drain: time.Millisecond,
			Listen:    fmt.Sprintf("127.0.0.1:%d", udp[id-1]),
			Neighbors: map[uint32]string{uint32(peer): fmt.Sprintf("127.0.0.1:%d", peerPort)},
			Heartbeat: 25 * time.Millisecond, SuspectAfter: 75 * time.Millisecond,
			DeadAfter: 150 * time.Millisecond}
	}
	d1 := startTestDaemon(t, mk(1, 2, udp[1]))
	d2 := startTestDaemon(t, mk(2, 1, udp[0]))
	_ = d2

	neighbor := func() (int, map[string]any, map[string]any) {
		code, resp := ctl(t, d1, "GET", "/healthz", "")
		nb, _ := resp["neighbors"].(map[string]any)
		h, _ := nb["2"].(map[string]any)
		return code, resp, h
	}
	waitCluster(t, 5*time.Second, "neighbor 2 alive", func() bool {
		code, _, h := neighbor()
		return code == 200 && h != nil && h["state"] == "alive"
	})

	// Partition: block all traffic to/from neighbor 2.
	code, resp := ctl(t, d1, "POST", "/chaos", `{"blocked": [2]}`)
	if code != 200 {
		t.Fatalf("chaos: %d %v", code, resp)
	}
	if b, _ := json.Marshal(resp["blocked"]); string(b) != "[2]" {
		t.Fatalf("chaos echo blocked = %v", resp["blocked"])
	}
	waitCluster(t, 5*time.Second, "neighbor 2 dead and node isolated", func() bool {
		code, resp, h := neighbor()
		return code == http.StatusServiceUnavailable && resp["isolated"] == true &&
			h != nil && h["state"] == "dead"
	})

	// Heal; the next heartbeat exchange revives the peer.
	if code, _ = ctl(t, d1, "POST", "/chaos", `{"blocked": []}`); code != 200 {
		t.Fatalf("chaos unblock: %d", code)
	}
	waitCluster(t, 5*time.Second, "neighbor 2 recovered", func() bool {
		code, resp, h := neighbor()
		return code == 200 && resp["isolated"] == false && h != nil && h["state"] == "alive"
	})

	// Validation: loss outside [0,1] is rejected and leaves state alone.
	if code, _ = ctl(t, d1, "POST", "/chaos", `{"loss": 1.5}`); code != 400 {
		t.Fatalf("bad loss accepted: %d", code)
	}
	if code, resp = ctl(t, d1, "POST", "/chaos", `{"loss": 0.25}`); code != 200 || resp["loss"] != 0.25 {
		t.Fatalf("chaos loss: %d %v", code, resp)
	}
}
