package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/chaos"
	"diffusion/internal/core"
	"diffusion/internal/custody"
	"diffusion/internal/filters"
	"diffusion/internal/message"
	"diffusion/internal/rt"
	"diffusion/internal/telemetry"
	"diffusion/internal/transport"
)

// Daemon is one live diffusion node: a core.Node on a wall-clock rt.Loop,
// a UDP link layer, and an HTTP control plane. All node state is owned by
// the loop; HTTP handlers cross onto it with loop.Call, receptions with
// loop.Post, so the protocol code runs exactly as single-threaded as it
// does in the simulator.
type Daemon struct {
	cfg   Config
	logw  io.Writer
	start time.Time

	loop *rt.Loop
	node *core.Node
	link *transport.UDP
	reg  *telemetry.Registry
	hub  *telemetry.Hub

	// Custody transfer (nil unless cfg.Custody): the bounded queue that
	// vouches for reinforced data across partitions, and its fsync'd
	// journal when cfg.CustodyFile is set.
	cusq     *custody.Queue
	cusStore *custody.Store

	httpLn   net.Listener
	httpSrv  *http.Server
	httpDone chan struct{}

	// Loop-confined application state.
	installed   []removable
	filterSpecs []string
	delivered   *telemetry.Counter
	ring        []delivery
	total       int

	// Crash recovery (see state.go). bootKeys is the effective key list
	// this boot registered — from the state file on a warm restart, from
	// the config otherwise — persisted as-is so key numbering survives
	// restarts.
	warm       bool
	bootKeys   []string
	stateSaves *telemetry.Counter
	lastSaveMS *telemetry.Gauge

	// flight is the always-on ring of recent protocol activity, dumped to
	// the log when a neighbor dies. Loop-confined, shared with the core.
	flight *telemetry.Flight

	// spans is the flight-path span ring (nil unless cfg.TraceSample > 0),
	// shared by the core and the transport and served at GET /spans. The
	// ring is internally locked; core writes happen on the loop, transport
	// writes on its own goroutines.
	spans *telemetry.SpanRing

	shutdownOnce sync.Once
	shutdownErr  error
}

// removable is the uninstall surface the built-in filters share.
type removable interface{ Remove() }

// delivery is one locally delivered message, kept in a bounded ring for
// GET /deliveries.
type delivery struct {
	Seq   int    `json:"seq"` // global delivery index, from 1
	AtMS  int64  `json:"at_ms"`
	Class string `json:"class"`
	Attrs string `json:"attrs"`
}

// deliveryRingCap bounds the delivery ring; total keeps counting beyond
// it.
const deliveryRingCap = 1024

// startDaemon brings a node up: transport, protocol stack, boot-time
// application state, and the control plane. The caller owns Shutdown.
func startDaemon(cfg Config, logw io.Writer) (*Daemon, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, logw: logw, start: time.Now(), loop: rt.NewLoop(),
		flight: telemetry.NewFlight(0)}
	if cfg.TraceSample > 0 {
		d.spans = telemetry.NewSpanRing(telemetry.DefaultSpanSize)
	}

	// Resolve the boot-time application state: a readable state file wins
	// over the config lists (warm restart after a crash); anything else is
	// a cold boot from the config.
	d.bootKeys = cfg.Keys
	bootSubs, bootPubs, bootFilters := cfg.Subscribe, cfg.Publish, cfg.Filters
	if cfg.StateFile != "" {
		st, found, err := loadState(cfg.StateFile)
		switch {
		case err != nil:
			fmt.Fprintf(logw, "diffnode %d: %v (cold boot)\n", cfg.ID, err)
		case found && st.ID != cfg.ID:
			fmt.Fprintf(logw, "diffnode %d: state file %s belongs to node %d, ignoring\n",
				cfg.ID, cfg.StateFile, st.ID)
		case found:
			d.warm = true
			d.bootKeys, bootSubs, bootPubs, bootFilters = st.Keys, st.Subscribe, st.Publish, st.Filters
			fmt.Fprintf(logw, "diffnode %d: warm restart from %s (%d subscriptions, %d publications, saved %v ago)\n",
				cfg.ID, cfg.StateFile, len(bootSubs), len(bootPubs),
				time.Since(time.UnixMilli(st.SavedAtMS)).Round(time.Millisecond))
		}
	}

	// Custody store and queue come up before the transport: the endpoint's
	// Accept callback journals straight into the queue, and an offer must
	// never be acknowledged before the journal exists.
	var cusOpts *transport.CustodyOptions
	if cfg.Custody {
		var restored []custody.Item
		// journal stays a nil interface for memory-only custody: a typed
		// nil *Store in it would pass the queue's != nil guard and crash.
		var journal custody.Journal
		if cfg.CustodyFile != "" {
			store, items, err := custody.OpenStore(cfg.CustodyFile)
			if err != nil {
				return nil, fmt.Errorf("diffnode: custody journal: %w", err)
			}
			d.cusStore, restored, journal = store, items, store
		}
		d.cusq = custody.NewQueue(cfg.CustodyLimit, journal)
		d.cusq.Restore(restored)
		if len(restored) > 0 {
			st := d.cusStore.Stats()
			fmt.Fprintf(logw, "diffnode %d: custody recovered %d items from %s (%d bytes torn tail discarded)\n",
				cfg.ID, len(restored), cfg.CustodyFile, st.TailTruncated)
		}
		cusOpts = &transport.CustodyOptions{
			// Accept runs on the endpoint's reader goroutine; the queue is
			// internally locked and journals (fsync) before reporting held,
			// so the ack the transport sends is backed by disk. AcceptOffer
			// (not Accept) because the offerer releases on our ack: an ID
			// this node held and released earlier must be re-held, or a
			// custody walk revisiting us under changed topology would
			// discharge data nobody holds.
			Accept: func(from uint32, id message.ID, payload []byte) (held, fresh bool) {
				return d.cusq.AcceptOffer(id, payload)
			},
			Release: func(peer uint32, id message.ID) {
				d.cusq.Release(id)
			},
		}
	}

	// The control plane binds before the transport comes up: discovery
	// announces carry the HTTP port so peers can walk the mesh through
	// GET /neighbors, and that port is only known once the listener binds.
	ln, err := net.Listen("tcp", cfg.HTTP)
	if err != nil {
		d.loop.Stop()
		d.closeCustody()
		return nil, fmt.Errorf("diffnode: control plane: %w", err)
	}
	d.httpLn = ln

	var disco *transport.DiscoveryConfig
	if cfg.discoveryEnabled() {
		// The vocabulary digest covers the full ordered key registry —
		// well-known keys plus this boot's application keys — so register
		// the latter now (idempotent; the boot sequence re-registers them
		// on the loop). Peers whose digest differs would silently
		// mis-parse every named interest; discovery quarantines them.
		for _, name := range d.bootKeys {
			attr.RegisterKey(name)
		}
		var names []string
		for _, k := range attr.RegisteredKeys() {
			names = append(names, attr.KeyName(k))
		}
		disco = &transport.DiscoveryConfig{
			Seeds:       cfg.Seeds,
			Advertise:   cfg.Advertise,
			HTTPPort:    uint16(ln.Addr().(*net.TCPAddr).Port),
			VocabDigest: transport.VocabDigest(names),
			Energy:      cfg.Energy,
			Interval:    cfg.AnnounceInterval,
			DegreeCap:   cfg.DegreeCap,
			OnMember:    d.onMember,
		}
	}

	var live *transport.LivenessConfig
	if cfg.Heartbeat >= 0 {
		live = &transport.LivenessConfig{
			Interval:      cfg.Heartbeat, // 0 takes the transport default
			SuspectAfter:  cfg.SuspectAfter,
			DeadAfter:     cfg.DeadAfter,
			OnStateChange: d.onPeerState,
		}
	}
	var rel *transport.ReliableConfig
	if cfg.Reliable {
		rel = &transport.ReliableConfig{RTO: cfg.ReliableRTO}
	}
	link, err := transport.ListenUDP(transport.UDPConfig{
		ID:        cfg.ID,
		Listen:    cfg.Listen,
		Neighbors: cfg.Neighbors,
		Loss:      cfg.Loss,
		Latency:   cfg.Latency,
		Seed:      cfg.Seed,
		Liveness:  live,
		Reliable:  rel,
		Custody:   cusOpts,
		Discovery: disco,
		Spans:     d.spans,
		SpanClock: d.loop.Now,
		Deliver: func(from uint32, payload []byte) {
			d.loop.Post(func() {
				if d.node != nil {
					d.node.Receive(from, payload)
				}
			})
		},
	})
	if err != nil {
		ln.Close()
		d.loop.Stop()
		d.closeCustody()
		return nil, err
	}
	d.link = link

	d.reg = telemetry.NewRegistry(fmt.Sprintf("node%d", cfg.ID))
	d.hub = telemetry.NewHub(d.loop.Now)
	d.hub.Register(d.reg)

	err = d.loop.Call(func() {
		d.node = core.NewNode(core.Config{
			Clock:               d.loop,
			Rand:                rand.New(rand.NewSource(cfg.Seed)),
			Link:                link,
			InterestInterval:    cfg.InterestInterval,
			ExploratoryInterval: cfg.ExploratoryInterval,
			ExploratoryEvery:    cfg.ExploratoryEvery,
			ForwardJitter:       cfg.ForwardJitter,
			TTL:                 cfg.TTL,
			SeenTTL:             cfg.SeenTTL,
			Custody:             d.cusq,
			EnergyAware:         cfg.EnergyAware,
			Flight:              d.flight,
			TraceSample:         cfg.TraceSample,
			Spans:               d.spans,
		})
		d.node.Instrument(d.reg)
		d.link.Stats().Instrument(d.reg)
		// Per-neighbor series, labeled with the peer ID via the registry's
		// "name|peer=N" convention (rendered as a peer label by
		// telemetry.WritePrometheus). Emitted at snapshot time only.
		d.reg.AddCollector(func(emit func(string, float64)) {
			for id, h := range d.link.PeerHealth() {
				emit(fmt.Sprintf("transport.peer_rtt_us|peer=%d", id), float64(h.RTTMicros))
				emit(fmt.Sprintf("transport.peer_state|peer=%d", id), float64(h.State))
				emit(fmt.Sprintf("transport.peer_last_heard_ms|peer=%d", id), float64(h.LastHeard.Milliseconds()))
			}
			for id, n := range d.link.PeerRetransmits() {
				emit(fmt.Sprintf("transport.peer_retransmits|peer=%d", id), float64(n))
			}
		})
		if d.link.DiscoveryEnabled() {
			d.reg.AddCollector(func(emit func(string, float64)) {
				for _, m := range d.link.Members() {
					emit(fmt.Sprintf("discovery.member_state|peer=%d", m.ID), float64(m.MembershipCode))
				}
			})
		}
		if d.cusStore != nil {
			d.reg.AddCollector(func(emit func(string, float64)) {
				st := d.cusStore.Stats()
				emit("custody.store_appends", float64(st.Appends))
				emit("custody.store_bytes_fsynced", float64(st.BytesFsynced))
				emit("custody.store_syncs", float64(st.Syncs))
				emit("custody.store_compactions", float64(st.Compactions))
				emit("custody.store_recovered", float64(st.Recovered))
			})
		}
		d.delivered = d.reg.Counter("ctl.deliveries")
		d.stateSaves = d.reg.Counter("recovery.state_saves")
		d.lastSaveMS = d.reg.Gauge("recovery.last_save_ms")
		warmGauge := d.reg.Gauge("recovery.warm_restart")
		if d.warm {
			warmGauge.Set(1)
		}
	})
	if err != nil {
		link.Close()
		ln.Close()
		d.closeCustody()
		return nil, err
	}

	// Boot-time application state, all on the loop. Key registration goes
	// first so the application vocabulary gets identical key numbers on
	// every node that lists the same names in the same order.
	var bootErr error
	d.loop.Call(func() {
		for _, name := range d.bootKeys {
			attr.RegisterKey(name)
		}
		for _, spec := range bootFilters {
			if err := d.installFilter(spec); err != nil {
				bootErr = err
				return
			}
		}
		for _, s := range bootSubs {
			if _, err := d.subscribeLocked(s); err != nil {
				bootErr = err
				return
			}
		}
		for _, s := range bootPubs {
			if _, err := d.publishLocked(s); err != nil {
				bootErr = err
				return
			}
		}
		d.saveStateLocked()
	})
	if bootErr != nil {
		link.Close()
		ln.Close()
		d.loop.Stop()
		d.closeCustody()
		return nil, bootErr
	}

	d.httpSrv = &http.Server{Handler: d.routes()}
	d.httpDone = make(chan struct{})
	go func() {
		defer close(d.httpDone)
		if err := d.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(d.logw, "diffnode %d: http: %v\n", cfg.ID, err)
		}
	}()

	// The address file is written last: a watcher that sees it may rely on
	// every part of the node — including the control plane — being up.
	if cfg.AddrFile != "" {
		if err := chaos.WriteAddrFile(cfg.AddrFile, chaos.AddrFile{
			ID: cfg.ID, UDP: link.LocalAddr().String(), HTTP: ln.Addr().String(),
		}); err != nil {
			d.Shutdown()
			return nil, fmt.Errorf("diffnode: address file: %w", err)
		}
	}

	discoNote := ""
	if disco != nil {
		discoNote = fmt.Sprintf(" discovery on (seeds %d, degree cap %d)",
			len(cfg.Seeds), d.link.DegreeCap())
	}
	fmt.Fprintf(d.logw, "diffnode %d: udp %s http %s neighbors [%s]%s\n",
		cfg.ID, link.LocalAddr(), ln.Addr(), cfg.neighborSummary(), discoNote)
	return d, nil
}

// HTTPAddr returns the control plane's bound address.
func (d *Daemon) HTTPAddr() net.Addr { return d.httpLn.Addr() }

// UDPAddr returns the diffusion socket's bound address.
func (d *Daemon) UDPAddr() *net.UDPAddr { return d.link.LocalAddr() }

// Shutdown is the SIGTERM path: withdraw the application layer (stopping
// interest refreshes and data origination), keep forwarding while
// in-flight traffic drains, then stop the control plane, the socket and
// the loop. Idempotent.
func (d *Daemon) Shutdown() error {
	d.shutdownOnce.Do(func() {
		fmt.Fprintf(d.logw, "diffnode %d: draining (%v)\n", d.cfg.ID, d.cfg.Drain)
		d.loop.Call(func() {
			for _, f := range d.installed {
				f.Remove()
			}
			d.installed = nil
			for _, h := range d.node.ActivePublications() {
				d.node.Unpublish(h)
			}
			for _, h := range d.node.ActiveSubscriptions() {
				d.node.Unsubscribe(h)
			}
		})
		// Gradients toward this node now expire on their own (the paper's
		// soft-state teardown); meanwhile keep relaying neighbors'
		// traffic for the drain window.
		time.Sleep(d.cfg.Drain)

		// Dump the flight recorder before tearing anything down: the last
		// seconds of protocol activity are the evidence for whatever made
		// the operator stop this node, and after the loop stops the ring
		// is unreachable.
		d.loop.Call(func() {
			fmt.Fprintf(d.logw, "diffnode %d: flight dump (shutdown drain):\n", d.cfg.ID)
			d.flight.Dump(d.logw, faultKindName)
		})

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			d.shutdownErr = err
			d.httpSrv.Close()
		}
		<-d.httpDone
		// A graceful exit tells the mesh: discovered neighbors demote this
		// node now instead of waiting out the failure detector.
		d.link.Leave()
		if err := d.link.Close(); err != nil && d.shutdownErr == nil {
			d.shutdownErr = err
		}
		d.loop.Call(func() { d.node.Close() })
		d.loop.Stop()
		d.closeCustody()
		fmt.Fprintf(d.logw, "diffnode %d: stopped\n", d.cfg.ID)
	})
	return d.shutdownErr
}

// closeCustody closes the custody journal, if any. The queue itself needs
// no teardown; undelivered custodial data is exactly what the journal is
// for.
func (d *Daemon) closeCustody() {
	if d.cusStore != nil {
		d.cusStore.Close()
	}
}

// Fault kinds the daemon records into the flight ring on liveness and
// membership transitions.
const (
	faultPeerSuspect = iota + 1
	faultPeerDead
	faultPeerRecovered
	faultMemberJoined
	faultMemberGone
)

// faultKindName renders daemon fault kinds for flight dumps.
func faultKindName(k uint8) string {
	switch k {
	case faultPeerSuspect:
		return "peer-suspect"
	case faultPeerDead:
		return "peer-dead"
	case faultPeerRecovered:
		return "peer-recovered"
	case faultMemberJoined:
		return "member-joined"
	case faultMemberGone:
		return "member-gone"
	default:
		return fmt.Sprintf("kind=%d", k)
	}
}

// onMember receives membership verdicts from the discovery engine. It
// runs on a transport goroutine, so protocol work is posted onto the
// loop. A joined (or rejoined) peer is primed exactly like a healed
// configured neighbor — NeighborRecovered re-floods interests and
// exploratory data so gradients form across the new edge; a rejoin
// purges state toward the old incarnation first. A departed peer
// (graceful leave, cap eviction, failed handshake) is a NeighborDead:
// gradients through it must not linger. A detector-declared death
// already drove NeighborDead through onPeerState, so MemberDead only
// records the table removal.
func (d *Daemon) onMember(peer uint32, ev transport.MemberEvent) {
	fmt.Fprintf(d.logw, "diffnode %d: member %d %s\n", d.cfg.ID, peer, ev)
	d.loop.Post(func() {
		if d.node == nil {
			return
		}
		kind := uint8(faultMemberGone)
		if ev == transport.MemberJoined || ev == transport.MemberRejoined {
			kind = faultMemberJoined
		}
		d.flight.Record(telemetry.FlightRecord{
			At: d.loop.Now(), Node: d.cfg.ID, Peer: peer,
			Verb: telemetry.VerbFault, Kind: kind,
		})
		switch ev {
		case transport.MemberJoined:
			d.node.NeighborRecovered(peer)
		case transport.MemberRejoined:
			d.node.NeighborDead(peer)
			d.node.NeighborRecovered(peer)
		case transport.MemberLeft, transport.MemberEvicted, transport.MemberDemoted:
			d.node.NeighborDead(peer)
		}
	})
}

// onPeerState receives the failure detector's verdicts. It runs on a
// transport goroutine, so everything protocol-touching is posted onto the
// loop: a dead neighbor purges the core's state toward it (NeighborDead
// re-primes interest and exploratory flooding around the hole), and the
// flight recorder is dumped to the log so the traffic leading up to the
// death is preserved for diagnosis.
func (d *Daemon) onPeerState(peer uint32, s transport.PeerState) {
	fmt.Fprintf(d.logw, "diffnode %d: neighbor %d is %s\n", d.cfg.ID, peer, s)
	d.loop.Post(func() {
		if d.node == nil {
			return
		}
		kind := uint8(faultPeerRecovered)
		switch s {
		case transport.PeerSuspect:
			kind = faultPeerSuspect
		case transport.PeerDead:
			kind = faultPeerDead
		}
		d.flight.Record(telemetry.FlightRecord{
			At: d.loop.Now(), Node: d.cfg.ID, Peer: peer,
			Verb: telemetry.VerbFault, Kind: kind,
		})
		switch s {
		case transport.PeerDead:
			d.node.NeighborDead(peer)
			fmt.Fprintf(d.logw, "diffnode %d: flight dump (neighbor %d died):\n", d.cfg.ID, peer)
			d.flight.Dump(d.logw, faultKindName)
		case transport.PeerAlive:
			// A recovery: re-prime discovery toward the healed peer and
			// replay any custodial data that was waiting out the partition.
			// (The transport has already re-offered its pending custody
			// frames on this transition.)
			d.node.NeighborRecovered(peer)
		}
	})
}

// subscribeLocked parses attrs and subscribes; loop-confined.
func (d *Daemon) subscribeLocked(attrsText string) (core.SubscriptionHandle, error) {
	vec, err := attr.ParseVec(attrsText)
	if err != nil {
		return 0, err
	}
	h := d.node.Subscribe(vec, d.onDelivery)
	fmt.Fprintf(d.logw, "diffnode %d: subscribed #%d %v\n", d.cfg.ID, h, vec)
	return h, nil
}

// publishLocked parses attrs and publishes; loop-confined.
func (d *Daemon) publishLocked(attrsText string) (core.PublicationHandle, error) {
	vec, err := attr.ParseVec(attrsText)
	if err != nil {
		return 0, err
	}
	h := d.node.Publish(vec)
	fmt.Fprintf(d.logw, "diffnode %d: published #%d %v\n", d.cfg.ID, h, vec)
	return h, nil
}

// onDelivery records a locally delivered message; loop-confined.
func (d *Daemon) onDelivery(m *message.Message) {
	d.total++
	d.delivered.Inc()
	d.ring = append(d.ring, delivery{
		Seq:   d.total,
		AtMS:  d.loop.Now().Milliseconds(),
		Class: m.Class.String(),
		Attrs: m.Attrs.Notation(),
	})
	if len(d.ring) > deliveryRingCap {
		d.ring = d.ring[len(d.ring)-deliveryRingCap:]
	}
}

// installFilter interprets one config filter spec ("name" or
// "name:<attrs>"); loop-confined.
func (d *Daemon) installFilter(spec string) error {
	name, pat := spec, ""
	if i := indexByte(spec, ':'); i >= 0 {
		name, pat = spec[:i], spec[i+1:]
	}
	var pattern attr.Vec
	if pat != "" {
		v, err := attr.ParseVec(pat)
		if err != nil {
			return fmt.Errorf("filter %q: %w", spec, err)
		}
		pattern = v
	}
	switch name {
	case "tap":
		d.installed = append(d.installed, filters.NewTap(d.node, pattern, d.logw))
	case "suppress":
		d.installed = append(d.installed, filters.NewSuppression(d.node, d.loop,
			filters.SuppressionOptions{Pattern: pattern}))
	case "cache":
		d.installed = append(d.installed, filters.NewCache(d.node, d.loop,
			filters.CacheOptions{Pattern: pattern}))
	default:
		return fmt.Errorf("filter %q: unknown name (want tap, suppress or cache)", spec)
	}
	d.filterSpecs = append(d.filterSpecs, spec)
	fmt.Fprintf(d.logw, "diffnode %d: installed filter %s\n", d.cfg.ID, spec)
	return nil
}

// indexByte is strings.IndexByte without the import noise.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// --- HTTP control plane ---

// routes builds the control-plane mux.
func (d *Daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /subscribe", d.handleSubscribe)
	mux.HandleFunc("POST /unsubscribe", d.handleUnsubscribe)
	mux.HandleFunc("POST /publish", d.handlePublish)
	mux.HandleFunc("POST /unpublish", d.handleUnpublish)
	mux.HandleFunc("POST /send", d.handleSend)
	mux.HandleFunc("GET /deliveries", d.handleDeliveries)
	mux.HandleFunc("GET /state", d.handleState)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /neighbors", d.handleNeighbors)
	mux.HandleFunc("GET /custody", d.handleCustody)
	mux.HandleFunc("POST /chaos", d.handleChaos)
	mux.HandleFunc("GET /spans", d.handleSpans)
	if d.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// maxBodyBytes bounds control-plane request bodies; attribute vectors are
// small.
const maxBodyBytes = 64 << 10

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "body too large or unreadable")
		return nil, false
	}
	return b, true
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// onLoop runs fn on the node's loop, translating a stopped loop into 503.
func (d *Daemon) onLoop(w http.ResponseWriter, fn func()) bool {
	if err := d.loop.Call(fn); err != nil {
		httpError(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return false
	}
	return true
}

// handleSubscribe installs a subscription. Body: attribute formals in the
// paper's textual notation.
func (d *Daemon) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var h core.SubscriptionHandle
	var err error
	var rendered string
	if !d.onLoop(w, func() {
		h, err = d.subscribeLocked(string(body))
		if err == nil {
			if v, ok := d.node.SubscriptionAttrs(h); ok {
				rendered = v.Notation()
			}
			d.saveStateLocked()
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"handle": h, "attrs": rendered})
}

// handlePublish declares a publication. Body: attribute actuals.
func (d *Daemon) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var h core.PublicationHandle
	var err error
	var rendered string
	if !d.onLoop(w, func() {
		h, err = d.publishLocked(string(body))
		if err == nil {
			if v, ok := d.node.PublicationAttrs(h); ok {
				rendered = v.Notation()
			}
			d.saveStateLocked()
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"handle": h, "attrs": rendered})
}

// handleRef decodes the {"handle": N} body unsubscribe/unpublish take.
func handleRef(w http.ResponseWriter, r *http.Request) (int, bool) {
	body, ok := readBody(w, r)
	if !ok {
		return 0, false
	}
	var req struct {
		Handle int `json:"handle"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {\"handle\": N}: %v", err)
		return 0, false
	}
	return req.Handle, true
}

func (d *Daemon) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	h, ok := handleRef(w, r)
	if !ok {
		return
	}
	var err error
	if !d.onLoop(w, func() {
		if err = d.node.Unsubscribe(core.SubscriptionHandle(h)); err == nil {
			d.saveStateLocked()
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

func (d *Daemon) handleUnpublish(w http.ResponseWriter, r *http.Request) {
	h, ok := handleRef(w, r)
	if !ok {
		return
	}
	var err error
	if !d.onLoop(w, func() {
		if err = d.node.Unpublish(core.PublicationHandle(h)); err == nil {
			d.saveStateLocked()
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

// handleSend emits one data message. Body: JSON {"publication": N,
// "attrs": "<actuals>", "exploratory": bool}.
func (d *Daemon) handleSend(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Publication int    `json:"publication"`
		Attrs       string `json:"attrs"`
		Exploratory bool   `json:"exploratory"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {\"publication\": N, \"attrs\": \"...\"}: %v", err)
		return
	}
	extra, err := attr.ParseVec(req.Attrs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "attrs: %v", err)
		return
	}
	var sendErr error
	if !d.onLoop(w, func() {
		h := core.PublicationHandle(req.Publication)
		if req.Exploratory {
			sendErr = d.node.SendExploratory(h, extra)
		} else {
			sendErr = d.node.Send(h, extra)
		}
	}) {
		return
	}
	switch {
	case errors.Is(sendErr, core.ErrUnknownHandle):
		httpError(w, http.StatusNotFound, "%v", sendErr)
	case sendErr != nil:
		httpError(w, http.StatusConflict, "%v", sendErr)
	default:
		writeJSON(w, map[string]any{"ok": true})
	}
}

// handleDeliveries reports local delivery history: the running total and
// the most recent ring entries (newest last). ?since=N trims entries with
// Seq <= N.
func (d *Daemon) handleDeliveries(w http.ResponseWriter, r *http.Request) {
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		fmt.Sscanf(s, "%d", &since)
	}
	var total int
	var recent []delivery
	if !d.onLoop(w, func() {
		total = d.total
		for _, dv := range d.ring {
			if dv.Seq > since {
				recent = append(recent, dv)
			}
		}
	}) {
		return
	}
	writeJSON(w, map[string]any{"total": total, "recent": recent})
}

// handleState reports the application layer: live handles with attrs and
// table sizes.
func (d *Daemon) handleState(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Handle int    `json:"handle"`
		Attrs  string `json:"attrs"`
	}
	var subs, pubs []entry
	var entries, seen int
	if !d.onLoop(w, func() {
		for _, h := range d.node.ActiveSubscriptions() {
			if v, ok := d.node.SubscriptionAttrs(h); ok {
				subs = append(subs, entry{int(h), v.Notation()})
			}
		}
		for _, h := range d.node.ActivePublications() {
			if v, ok := d.node.PublicationAttrs(h); ok {
				pubs = append(pubs, entry{int(h), v.Notation()})
			}
		}
		entries, seen = d.node.Entries(), d.node.SeenSize()
	}) {
		return
	}
	writeJSON(w, map[string]any{
		"id":               d.cfg.ID,
		"subscriptions":    subs,
		"publications":     pubs,
		"interest_entries": entries,
		"seen_cache":       seen,
	})
}

// handleMetrics serves the telemetry registry in Prometheus text format.
// The snapshot is taken on the loop (collectors read live node state);
// rendering happens on the handler goroutine.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if !d.onLoop(w, func() { snap = d.hub.Snapshot() }) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, snap, "diffusion")
}

// handleHealthz reports liveness: the process itself plus every
// neighbor's failure-detector state (alive/suspect/dead and how long ago
// it was last heard). When every neighbor is dead the node is partitioned
// from the network and the endpoint answers 503, so an external
// supervisor can distinguish "process up, network gone" from healthy.
// A node with no neighbors at all — single-node deployment, or a
// discovery node that has not joined yet — is never "isolated": that is
// a legitimate steady state, and a 503 there would have a supervisor
// restart-looping a healthy process. (The detector reports all-dead only
// when it watches at least one peer, so the empty table is safe.)
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type neighborHealth struct {
		State       string `json:"state"`
		LastHeardMS int64  `json:"last_heard_ms"`
		RTTMicros   int64  `json:"rtt_us,omitempty"`
	}
	resp := map[string]any{
		"id":         d.cfg.ID,
		"uptime_ms":  time.Since(d.start).Milliseconds(),
		"goroutines": runtime.NumGoroutine(),
	}
	isolated := false
	if ph := d.link.PeerHealth(); ph != nil {
		neighbors := make(map[string]neighborHealth, len(ph))
		for id, h := range ph {
			neighbors[strconv.FormatUint(uint64(id), 10)] = neighborHealth{
				State:       h.State.String(),
				LastHeardMS: h.LastHeard.Milliseconds(),
				RTTMicros:   h.RTTMicros,
			}
		}
		isolated = d.link.Isolated()
		resp["neighbors"] = neighbors
		resp["isolated"] = isolated
	}
	w.Header().Set("Content-Type", "application/json")
	if isolated {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// handleNeighbors reports the node's membership view: every peer in the
// live neighbor table plus every discovery record still being tracked
// (candidates, quarantined peers, recent departures). This is the
// surface cmd/diffscope's mesh walk rides on — each row's http address
// points at that peer's own /neighbors. Works with discovery off too:
// configured neighbors show up with origin "configured".
func (d *Daemon) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID          uint32  `json:"id"`
		UDP         string  `json:"udp,omitempty"`
		HTTP        string  `json:"http,omitempty"`
		Origin      string  `json:"origin"`
		Member      string  `json:"member"`
		Peered      bool    `json:"peered"`
		Score       uint64  `json:"score,omitempty"`
		Energy      float64 `json:"energy,omitempty"`
		Boot        *uint32 `json:"boot,omitempty"`
		DataRecv    uint64  `json:"data_recv"`
		DataSent    uint64  `json:"data_sent"`
		State       string  `json:"state,omitempty"`
		LastHeardMS int64   `json:"last_heard_ms,omitempty"`
		RTTMicros   int64   `json:"rtt_us,omitempty"`
	}
	members := d.link.Members()
	rows := make([]row, 0, len(members))
	degree := 0
	for _, m := range members {
		if m.MembershipCode == transport.MembershipNeighbor {
			degree++
		}
		rw := row{
			ID: m.ID, UDP: m.Addr, HTTP: m.HTTPAddr,
			Origin: m.Origin, Member: m.Membership, Peered: m.Peered,
			Score: m.Score, Energy: m.Energy,
			DataRecv: m.DataRecv, DataSent: m.DataSent,
		}
		if m.HasBoot {
			// The peer's incarnation, pointer-typed so "no full announce
			// yet" is absent rather than a real-looking nonce of 0 — chaos
			// harnesses diff this across restarts to prove a rejoin.
			boot := m.Boot
			rw.Boot = &boot
		}
		if m.HasHealth {
			rw.State = m.Health.State.String()
			rw.LastHeardMS = m.Health.LastHeard.Milliseconds()
			rw.RTTMicros = m.Health.RTTMicros
		}
		rows = append(rows, rw)
	}
	writeJSON(w, map[string]any{
		"id":        d.cfg.ID,
		"boot":      d.link.Boot(),
		"degree":    degree,
		"cap":       d.link.DegreeCap(),
		"discovery": d.link.DiscoveryEnabled(),
		"neighbors": rows,
	})
}

// handleCustody reports the custody layer: queue depth and counters,
// outstanding wire offers, and journal accounting when a custody file is
// configured. 404 when custody is disabled. The queue and store are
// internally locked, so no loop crossing is needed.
func (d *Daemon) handleCustody(w http.ResponseWriter, r *http.Request) {
	if d.cusq == nil {
		httpError(w, http.StatusNotFound, "custody is not enabled")
		return
	}
	c := d.cusq.Counters()
	resp := map[string]any{
		"len":            d.cusq.Len(),
		"limit":          d.cusq.Limit(),
		"pending_offers": d.link.CustodyPending(),
		"accepted":       c.Accepted,
		"released":       c.Released,
		"replayed":       c.Replayed,
		"shed":           c.Shed,
		"restored":       c.Restored,
	}
	if d.cusStore != nil {
		st := d.cusStore.Stats()
		resp["journal"] = map[string]any{
			"appends":        st.Appends,
			"bytes_appended": st.BytesAppended,
			"bytes_fsynced":  st.BytesFsynced,
			"syncs":          st.Syncs,
			"compactions":    st.Compactions,
			"tail_truncated": st.TailTruncated,
			"recovered":      st.Recovered,
			"live":           d.cusStore.Live(),
		}
	}
	writeJSON(w, resp)
}

// handleChaos adjusts live transport impairment, the process-level chaos
// harness's lever for partitions and loss ramps. Body: JSON with optional
// "loss" (egress drop probability in [0,1]) and "blocked" (neighbor IDs
// whose traffic is dropped in both directions); omitted fields are left
// alone. The response reports the impairment now in force.
func (d *Daemon) handleChaos(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Loss    *float64  `json:"loss"`
		Blocked *[]uint32 `json:"blocked"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {\"loss\": P, \"blocked\": [ID, ...]}: %v", err)
		return
	}
	if req.Loss != nil && (*req.Loss < 0 || *req.Loss > 1) {
		httpError(w, http.StatusBadRequest, "loss %v outside [0,1]", *req.Loss)
		return
	}
	if req.Loss != nil {
		d.link.SetLoss(*req.Loss)
	}
	if req.Blocked != nil {
		d.link.SetBlocked(*req.Blocked)
	}
	blocked := d.link.Blocked()
	if blocked == nil {
		blocked = []uint32{}
	}
	fmt.Fprintf(d.logw, "diffnode %d: chaos loss=%v blocked=%v\n", d.cfg.ID, d.link.Loss(), blocked)
	writeJSON(w, map[string]any{"loss": d.link.Loss(), "blocked": blocked})
}

// handleSpans serves the flight-path span ring as JSONL: one header line
// carrying the node's identity, boot nonce and the ring clock's absolute
// base, then one telemetry.Record per span with us relative to that base.
// cmd/diffscope scrapes this from every node and rebases onto wall time
// to merge cluster-wide causal timelines. 404 when tracing is off.
func (d *Daemon) handleSpans(w http.ResponseWriter, r *http.Request) {
	if d.spans == nil {
		httpError(w, http.StatusNotFound, "flight-path tracing is not enabled (set trace_sample > 0)")
		return
	}
	spans := d.spans.Spans()
	w.Header().Set("Content-Type", "application/jsonl")
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{
		"node":          d.cfg.ID,
		"boot":          d.link.Boot(),
		"start_unix_us": d.loop.Start().UnixMicro(),
		"spans":         len(spans),
	})
	for _, sp := range spans {
		enc.Encode(sp.TraceRecord())
	}
}
