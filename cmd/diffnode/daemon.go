package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/filters"
	"diffusion/internal/message"
	"diffusion/internal/rt"
	"diffusion/internal/telemetry"
	"diffusion/internal/transport"
)

// Daemon is one live diffusion node: a core.Node on a wall-clock rt.Loop,
// a UDP link layer, and an HTTP control plane. All node state is owned by
// the loop; HTTP handlers cross onto it with loop.Call, receptions with
// loop.Post, so the protocol code runs exactly as single-threaded as it
// does in the simulator.
type Daemon struct {
	cfg   Config
	logw  io.Writer
	start time.Time

	loop *rt.Loop
	node *core.Node
	link *transport.UDP
	reg  *telemetry.Registry
	hub  *telemetry.Hub

	httpLn   net.Listener
	httpSrv  *http.Server
	httpDone chan struct{}

	// Loop-confined application state.
	installed []removable
	delivered *telemetry.Counter
	ring      []delivery
	total     int

	shutdownOnce sync.Once
	shutdownErr  error
}

// removable is the uninstall surface the built-in filters share.
type removable interface{ Remove() }

// delivery is one locally delivered message, kept in a bounded ring for
// GET /deliveries.
type delivery struct {
	Seq   int    `json:"seq"` // global delivery index, from 1
	AtMS  int64  `json:"at_ms"`
	Class string `json:"class"`
	Attrs string `json:"attrs"`
}

// deliveryRingCap bounds the delivery ring; total keeps counting beyond
// it.
const deliveryRingCap = 1024

// startDaemon brings a node up: transport, protocol stack, boot-time
// application state, and the control plane. The caller owns Shutdown.
func startDaemon(cfg Config, logw io.Writer) (*Daemon, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Daemon{cfg: cfg, logw: logw, start: time.Now(), loop: rt.NewLoop()}

	link, err := transport.ListenUDP(transport.UDPConfig{
		ID:        cfg.ID,
		Listen:    cfg.Listen,
		Neighbors: cfg.Neighbors,
		Loss:      cfg.Loss,
		Latency:   cfg.Latency,
		Seed:      cfg.Seed,
		Deliver: func(from uint32, payload []byte) {
			d.loop.Post(func() {
				if d.node != nil {
					d.node.Receive(from, payload)
				}
			})
		},
	})
	if err != nil {
		d.loop.Stop()
		return nil, err
	}
	d.link = link

	d.reg = telemetry.NewRegistry(fmt.Sprintf("node%d", cfg.ID))
	d.hub = telemetry.NewHub(d.loop.Now)
	d.hub.Register(d.reg)

	err = d.loop.Call(func() {
		d.node = core.NewNode(core.Config{
			Clock:               d.loop,
			Rand:                rand.New(rand.NewSource(cfg.Seed)),
			Link:                link,
			InterestInterval:    cfg.InterestInterval,
			ExploratoryInterval: cfg.ExploratoryInterval,
			ExploratoryEvery:    cfg.ExploratoryEvery,
			ForwardJitter:       cfg.ForwardJitter,
			TTL:                 cfg.TTL,
		})
		d.node.Instrument(d.reg)
		d.link.Stats().Instrument(d.reg)
		d.delivered = d.reg.Counter("ctl.deliveries")
	})
	if err != nil {
		link.Close()
		return nil, err
	}

	// Boot-time application state, all on the loop. Key registration goes
	// first so the application vocabulary gets identical key numbers on
	// every node that lists the same names in the same order.
	var bootErr error
	d.loop.Call(func() {
		for _, name := range cfg.Keys {
			attr.RegisterKey(name)
		}
		for _, spec := range cfg.Filters {
			if err := d.installFilter(spec); err != nil {
				bootErr = err
				return
			}
		}
		for _, s := range cfg.Subscribe {
			if _, err := d.subscribeLocked(s); err != nil {
				bootErr = err
				return
			}
		}
		for _, s := range cfg.Publish {
			if _, err := d.publishLocked(s); err != nil {
				bootErr = err
				return
			}
		}
	})
	if bootErr != nil {
		link.Close()
		d.loop.Stop()
		return nil, bootErr
	}

	ln, err := net.Listen("tcp", cfg.HTTP)
	if err != nil {
		link.Close()
		d.loop.Stop()
		return nil, fmt.Errorf("diffnode: control plane: %w", err)
	}
	d.httpLn = ln
	d.httpSrv = &http.Server{Handler: d.routes()}
	d.httpDone = make(chan struct{})
	go func() {
		defer close(d.httpDone)
		if err := d.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(d.logw, "diffnode %d: http: %v\n", cfg.ID, err)
		}
	}()

	fmt.Fprintf(d.logw, "diffnode %d: udp %s http %s neighbors [%s]\n",
		cfg.ID, link.LocalAddr(), ln.Addr(), cfg.neighborSummary())
	return d, nil
}

// HTTPAddr returns the control plane's bound address.
func (d *Daemon) HTTPAddr() net.Addr { return d.httpLn.Addr() }

// UDPAddr returns the diffusion socket's bound address.
func (d *Daemon) UDPAddr() *net.UDPAddr { return d.link.LocalAddr() }

// Shutdown is the SIGTERM path: withdraw the application layer (stopping
// interest refreshes and data origination), keep forwarding while
// in-flight traffic drains, then stop the control plane, the socket and
// the loop. Idempotent.
func (d *Daemon) Shutdown() error {
	d.shutdownOnce.Do(func() {
		fmt.Fprintf(d.logw, "diffnode %d: draining (%v)\n", d.cfg.ID, d.cfg.Drain)
		d.loop.Call(func() {
			for _, f := range d.installed {
				f.Remove()
			}
			d.installed = nil
			for _, h := range d.node.ActivePublications() {
				d.node.Unpublish(h)
			}
			for _, h := range d.node.ActiveSubscriptions() {
				d.node.Unsubscribe(h)
			}
		})
		// Gradients toward this node now expire on their own (the paper's
		// soft-state teardown); meanwhile keep relaying neighbors'
		// traffic for the drain window.
		time.Sleep(d.cfg.Drain)

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.httpSrv.Shutdown(ctx); err != nil {
			d.shutdownErr = err
			d.httpSrv.Close()
		}
		<-d.httpDone
		if err := d.link.Close(); err != nil && d.shutdownErr == nil {
			d.shutdownErr = err
		}
		d.loop.Call(func() { d.node.Close() })
		d.loop.Stop()
		fmt.Fprintf(d.logw, "diffnode %d: stopped\n", d.cfg.ID)
	})
	return d.shutdownErr
}

// subscribeLocked parses attrs and subscribes; loop-confined.
func (d *Daemon) subscribeLocked(attrsText string) (core.SubscriptionHandle, error) {
	vec, err := attr.ParseVec(attrsText)
	if err != nil {
		return 0, err
	}
	h := d.node.Subscribe(vec, d.onDelivery)
	fmt.Fprintf(d.logw, "diffnode %d: subscribed #%d %v\n", d.cfg.ID, h, vec)
	return h, nil
}

// publishLocked parses attrs and publishes; loop-confined.
func (d *Daemon) publishLocked(attrsText string) (core.PublicationHandle, error) {
	vec, err := attr.ParseVec(attrsText)
	if err != nil {
		return 0, err
	}
	h := d.node.Publish(vec)
	fmt.Fprintf(d.logw, "diffnode %d: published #%d %v\n", d.cfg.ID, h, vec)
	return h, nil
}

// onDelivery records a locally delivered message; loop-confined.
func (d *Daemon) onDelivery(m *message.Message) {
	d.total++
	d.delivered.Inc()
	d.ring = append(d.ring, delivery{
		Seq:   d.total,
		AtMS:  d.loop.Now().Milliseconds(),
		Class: m.Class.String(),
		Attrs: m.Attrs.Notation(),
	})
	if len(d.ring) > deliveryRingCap {
		d.ring = d.ring[len(d.ring)-deliveryRingCap:]
	}
}

// installFilter interprets one config filter spec ("name" or
// "name:<attrs>"); loop-confined.
func (d *Daemon) installFilter(spec string) error {
	name, pat := spec, ""
	if i := indexByte(spec, ':'); i >= 0 {
		name, pat = spec[:i], spec[i+1:]
	}
	var pattern attr.Vec
	if pat != "" {
		v, err := attr.ParseVec(pat)
		if err != nil {
			return fmt.Errorf("filter %q: %w", spec, err)
		}
		pattern = v
	}
	switch name {
	case "tap":
		d.installed = append(d.installed, filters.NewTap(d.node, pattern, d.logw))
	case "suppress":
		d.installed = append(d.installed, filters.NewSuppression(d.node, d.loop,
			filters.SuppressionOptions{Pattern: pattern}))
	case "cache":
		d.installed = append(d.installed, filters.NewCache(d.node, d.loop,
			filters.CacheOptions{Pattern: pattern}))
	default:
		return fmt.Errorf("filter %q: unknown name (want tap, suppress or cache)", spec)
	}
	fmt.Fprintf(d.logw, "diffnode %d: installed filter %s\n", d.cfg.ID, spec)
	return nil
}

// indexByte is strings.IndexByte without the import noise.
func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// --- HTTP control plane ---

// routes builds the control-plane mux.
func (d *Daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /subscribe", d.handleSubscribe)
	mux.HandleFunc("POST /unsubscribe", d.handleUnsubscribe)
	mux.HandleFunc("POST /publish", d.handlePublish)
	mux.HandleFunc("POST /unpublish", d.handleUnpublish)
	mux.HandleFunc("POST /send", d.handleSend)
	mux.HandleFunc("GET /deliveries", d.handleDeliveries)
	mux.HandleFunc("GET /state", d.handleState)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	return mux
}

// maxBodyBytes bounds control-plane request bodies; attribute vectors are
// small.
const maxBodyBytes = 64 << 10

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "body too large or unreadable")
		return nil, false
	}
	return b, true
}

// httpError writes a JSON error envelope.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// onLoop runs fn on the node's loop, translating a stopped loop into 503.
func (d *Daemon) onLoop(w http.ResponseWriter, fn func()) bool {
	if err := d.loop.Call(fn); err != nil {
		httpError(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return false
	}
	return true
}

// handleSubscribe installs a subscription. Body: attribute formals in the
// paper's textual notation.
func (d *Daemon) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var h core.SubscriptionHandle
	var err error
	var rendered string
	if !d.onLoop(w, func() {
		h, err = d.subscribeLocked(string(body))
		if err == nil {
			if v, ok := d.node.SubscriptionAttrs(h); ok {
				rendered = v.Notation()
			}
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"handle": h, "attrs": rendered})
}

// handlePublish declares a publication. Body: attribute actuals.
func (d *Daemon) handlePublish(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var h core.PublicationHandle
	var err error
	var rendered string
	if !d.onLoop(w, func() {
		h, err = d.publishLocked(string(body))
		if err == nil {
			if v, ok := d.node.PublicationAttrs(h); ok {
				rendered = v.Notation()
			}
		}
	}) {
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"handle": h, "attrs": rendered})
}

// handleRef decodes the {"handle": N} body unsubscribe/unpublish take.
func handleRef(w http.ResponseWriter, r *http.Request) (int, bool) {
	body, ok := readBody(w, r)
	if !ok {
		return 0, false
	}
	var req struct {
		Handle int `json:"handle"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {\"handle\": N}: %v", err)
		return 0, false
	}
	return req.Handle, true
}

func (d *Daemon) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	h, ok := handleRef(w, r)
	if !ok {
		return
	}
	var err error
	if !d.onLoop(w, func() { err = d.node.Unsubscribe(core.SubscriptionHandle(h)) }) {
		return
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

func (d *Daemon) handleUnpublish(w http.ResponseWriter, r *http.Request) {
	h, ok := handleRef(w, r)
	if !ok {
		return
	}
	var err error
	if !d.onLoop(w, func() { err = d.node.Unpublish(core.PublicationHandle(h)) }) {
		return
	}
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

// handleSend emits one data message. Body: JSON {"publication": N,
// "attrs": "<actuals>", "exploratory": bool}.
func (d *Daemon) handleSend(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Publication int    `json:"publication"`
		Attrs       string `json:"attrs"`
		Exploratory bool   `json:"exploratory"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "want JSON {\"publication\": N, \"attrs\": \"...\"}: %v", err)
		return
	}
	extra, err := attr.ParseVec(req.Attrs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "attrs: %v", err)
		return
	}
	var sendErr error
	if !d.onLoop(w, func() {
		h := core.PublicationHandle(req.Publication)
		if req.Exploratory {
			sendErr = d.node.SendExploratory(h, extra)
		} else {
			sendErr = d.node.Send(h, extra)
		}
	}) {
		return
	}
	switch {
	case errors.Is(sendErr, core.ErrUnknownHandle):
		httpError(w, http.StatusNotFound, "%v", sendErr)
	case sendErr != nil:
		httpError(w, http.StatusConflict, "%v", sendErr)
	default:
		writeJSON(w, map[string]any{"ok": true})
	}
}

// handleDeliveries reports local delivery history: the running total and
// the most recent ring entries (newest last). ?since=N trims entries with
// Seq <= N.
func (d *Daemon) handleDeliveries(w http.ResponseWriter, r *http.Request) {
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		fmt.Sscanf(s, "%d", &since)
	}
	var total int
	var recent []delivery
	if !d.onLoop(w, func() {
		total = d.total
		for _, dv := range d.ring {
			if dv.Seq > since {
				recent = append(recent, dv)
			}
		}
	}) {
		return
	}
	writeJSON(w, map[string]any{"total": total, "recent": recent})
}

// handleState reports the application layer: live handles with attrs and
// table sizes.
func (d *Daemon) handleState(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Handle int    `json:"handle"`
		Attrs  string `json:"attrs"`
	}
	var subs, pubs []entry
	var entries, seen int
	if !d.onLoop(w, func() {
		for _, h := range d.node.ActiveSubscriptions() {
			if v, ok := d.node.SubscriptionAttrs(h); ok {
				subs = append(subs, entry{int(h), v.Notation()})
			}
		}
		for _, h := range d.node.ActivePublications() {
			if v, ok := d.node.PublicationAttrs(h); ok {
				pubs = append(pubs, entry{int(h), v.Notation()})
			}
		}
		entries, seen = d.node.Entries(), d.node.SeenSize()
	}) {
		return
	}
	writeJSON(w, map[string]any{
		"id":               d.cfg.ID,
		"subscriptions":    subs,
		"publications":     pubs,
		"interest_entries": entries,
		"seen_cache":       seen,
	})
}

// handleMetrics serves the telemetry registry in Prometheus text format.
// The snapshot is taken on the loop (collectors read live node state);
// rendering happens on the handler goroutine.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var snap telemetry.Snapshot
	if !d.onLoop(w, func() { snap = d.hub.Snapshot() }) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, snap, "diffusion")
}

// handleHealthz reports liveness.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"id":         d.cfg.ID,
		"uptime_ms":  time.Since(d.start).Milliseconds(),
		"goroutines": runtime.NumGoroutine(),
	})
}
