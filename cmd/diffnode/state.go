package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Crash recovery. Directed diffusion is soft state all the way down, so a
// restarted node needs nothing from the network to resume forwarding —
// interests re-flood, gradients rebuild. What the network cannot restore
// is the node's own role: which attribute keys it registered (numbering
// must match the rest of the cluster), what it subscribed to, what it
// publishes, and which in-network filters it runs. StateFile persists
// exactly that, rewritten atomically after every application-layer
// mutation, so SIGKILL followed by re-exec lands the node back in its
// role within one interest interval.
//
// Graceful shutdown deliberately does not rewrite the file after
// withdrawing the application layer: the snapshot on disk stays the
// node's last live role, which is what a restart should resume.

// persistedState is the JSON schema of a state file. All application
// state is kept in the paper's textual attribute notation, the same form
// the config file and the HTTP control plane use.
type persistedState struct {
	ID        uint32   `json:"id"`
	SavedAtMS int64    `json:"saved_at_ms"`
	Keys      []string `json:"keys,omitempty"`
	Subscribe []string `json:"subscribe,omitempty"`
	Publish   []string `json:"publish,omitempty"`
	Filters   []string `json:"filters,omitempty"`
}

// loadState reads a state file. found is false when the file simply does
// not exist (a cold boot, not an error). A file that exists but does not
// parse — a crash torn the bytes, disk corruption, an operator's stray
// edit — is quarantined by renaming it to path+".corrupt" so the node
// boots fresh from its config instead of crash-looping, while the bad
// bytes stay on disk for diagnosis. The returned error describes the
// corruption; the caller logs it and proceeds with a cold boot.
func loadState(path string) (persistedState, bool, error) {
	var st persistedState
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, false, nil
	}
	if err != nil {
		return st, false, err
	}
	if err := json.Unmarshal(b, &st); err != nil {
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return persistedState{}, false,
				fmt.Errorf("state %s: %w (quarantine failed: %v)", path, err, rerr)
		}
		return persistedState{}, false,
			fmt.Errorf("state %s: %w (quarantined to %s)", path, err, quarantine)
	}
	return st, true, nil
}

// saveStateLocked snapshots the live application layer into the state
// file via write-to-temp-and-rename, so a crash mid-save leaves the
// previous snapshot intact. Loop-confined (reads node tables); the file
// is a few hundred bytes, so the write is cheap enough for the loop.
func (d *Daemon) saveStateLocked() {
	if d.cfg.StateFile == "" {
		return
	}
	st := persistedState{
		ID:        d.cfg.ID,
		SavedAtMS: time.Now().UnixMilli(),
		Keys:      d.bootKeys,
		Filters:   d.filterSpecs,
	}
	for _, h := range d.node.ActiveSubscriptions() {
		if v, ok := d.node.SubscriptionAttrs(h); ok {
			st.Subscribe = append(st.Subscribe, v.Notation())
		}
	}
	for _, h := range d.node.ActivePublications() {
		if v, ok := d.node.PublicationAttrs(h); ok {
			st.Publish = append(st.Publish, v.Notation())
		}
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		fmt.Fprintf(d.logw, "diffnode %d: state save: %v\n", d.cfg.ID, err)
		return
	}
	b = append(b, '\n')
	tmp := d.cfg.StateFile + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		fmt.Fprintf(d.logw, "diffnode %d: state save: %v\n", d.cfg.ID, err)
		return
	}
	if err := os.Rename(tmp, d.cfg.StateFile); err != nil {
		fmt.Fprintf(d.logw, "diffnode %d: state save: %v\n", d.cfg.ID, err)
		return
	}
	d.stateSaves.Inc()
	d.lastSaveMS.Set(float64(st.SavedAtMS))
}
