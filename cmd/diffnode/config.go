package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Config is one diffnode's deployment description: identity, sockets, the
// static neighbor table, protocol timings, and the application state to
// install at boot. It can be loaded from a JSON file (-config) with
// individual flags overriding, so a cluster is a directory of small JSON
// files plus one binary.
type Config struct {
	// ID is this node's link-layer identifier (required, nonzero).
	ID uint32 `json:"id"`
	// Listen is the UDP address for diffusion traffic ("127.0.0.1:7001").
	Listen string `json:"listen"`
	// HTTP is the control-plane listen address ("127.0.0.1:8001").
	HTTP string `json:"http"`
	// Neighbors maps neighbor IDs to their UDP addresses. Optional when
	// discovery is on (Seeds/Discover): the membership protocol finds
	// neighbors at runtime, and any static entries are pinned — counted
	// against the degree cap but never evicted.
	Neighbors map[uint32]string `json:"neighbors"`

	// Seeds are UDP addresses of existing mesh members to announce to at
	// boot. Setting any enables neighbor discovery: the node introduces
	// itself to the seeds, learns the rest of the mesh by gossip, and
	// promotes/demotes neighbors at runtime.
	Seeds []string `json:"seeds"`
	// Discover enables discovery without seeds — the stance of the first
	// node in a fresh mesh, which just listens for announces.
	Discover bool `json:"discover"`
	// DegreeCap bounds configured + discovered neighbors (0: 8). Slots go
	// to the highest cluster-head scores; isolated nodes are always
	// rescued (see transport.DiscoveryConfig).
	DegreeCap int `json:"degree_cap"`
	// AnnounceInterval is the discovery announce period (0: 1s).
	AnnounceInterval time.Duration `json:"announce_interval"`
	// Energy in (0,1] is the node's advertised energy level, the
	// cluster-head tiebreak (0: 1.0).
	Energy float64 `json:"energy"`
	// Advertise is the UDP address announced to peers, for when the bound
	// address is not the reachable one (default: the bound address).
	Advertise string `json:"advertise"`

	// AddrFile, when set, is written atomically after the sockets bind
	// with {"id","udp","http"} — how an orchestrator learns the real ports
	// when listening on ":0".
	AddrFile string `json:"addr_file"`

	// Keys pre-registers application attribute keys, in order. Attribute
	// keys travel as 32-bit numbers (the paper "assume[s] out-of-band
	// coordination of their values"); listing the same names in the same
	// order in every node's config is that coordination. The paper's
	// well-known vocabulary (type, interval, instance, sequence, ...) is
	// always pre-registered and needs no entry here.
	Keys []string `json:"keys"`

	// Subscribe and Publish are attribute vectors (paper textual
	// notation) installed at boot; handles are reported on the log and
	// visible via GET /state.
	Subscribe []string `json:"subscribe"`
	Publish   []string `json:"publish"`
	// Filters names in-network processing filters to install at boot:
	// "tap", "suppress" or "cache", each optionally followed by
	// ":<attrs>" restricting the filter to matching messages
	// (e.g. "suppress:task EQ surveillance").
	Filters []string `json:"filters"`

	// Seed drives the node's jitter stream (default: the node ID).
	Seed int64 `json:"seed"`
	// Protocol timings; zero values take the paper's testbed defaults
	// (see core.Config).
	InterestInterval    time.Duration `json:"interest_interval"`
	ExploratoryInterval time.Duration `json:"exploratory_interval"`
	ExploratoryEvery    int           `json:"exploratory_every"`
	ForwardJitter       time.Duration `json:"forward_jitter"`
	TTL                 uint8         `json:"ttl"`

	// Loss and Latency inject synthetic impairment on the UDP sends, for
	// parity testing against the simulated radio.
	Loss    float64       `json:"loss"`
	Latency time.Duration `json:"latency"`

	// Heartbeat is the neighbor failure detector's probe period. Zero
	// takes the transport default (1s); a negative value disables the
	// detector entirely (no heartbeats, no dead-neighbor events).
	Heartbeat time.Duration `json:"heartbeat"`
	// SuspectAfter and DeadAfter are the silence thresholds that mark a
	// neighbor suspect and dead (defaults 3x and 8x the heartbeat).
	SuspectAfter time.Duration `json:"suspect_after"`
	DeadAfter    time.Duration `json:"dead_after"`

	// Reliable turns on per-neighbor acknowledged unicast with
	// retransmission and overload shedding (see transport.ReliableConfig).
	// Broadcasts stay best-effort, as on a radio.
	Reliable bool `json:"reliable"`
	// ReliableRTO is the initial retransmission timeout (0: transport
	// default, 200ms).
	ReliableRTO time.Duration `json:"reliable_rto"`

	// Custody enables disruption-tolerant custody transfer: reinforced
	// data that cannot be forwarded is parked in a bounded custody queue
	// and replayed when a path appears, with hop-by-hop transfer to the
	// next custodian acknowledged only after a durable accept. Setting
	// CustodyFile or CustodyLimit implies Custody.
	Custody bool `json:"custody"`
	// CustodyFile is the fsync'd custody journal; custodial data in it
	// survives SIGKILL and is replayed after a warm restart. Empty keeps
	// custody memory-only (survives partitions, not crashes).
	CustodyFile string `json:"custody_file"`
	// CustodyLimit bounds the custody queue (0: 1024).
	CustodyLimit int `json:"custody_limit"`
	// SeenTTL is the duplicate-suppression horizon (0: 2m). Deployments
	// expecting multi-minute partitions should raise it past the longest
	// partition they must ride out, so replayed custody is not mistaken
	// for fresh traffic after its ID aged out of the sink's cache.
	SeenTTL time.Duration `json:"seen_ttl"`
	// EnergyAware spreads reinforcement across equally-fresh exploratory
	// deliverers instead of always reinforcing the first (see
	// core.Config.EnergyAware).
	EnergyAware bool `json:"energy_aware"`

	// TraceSample enables flight-path tracing: each origination is
	// sampled with this probability (0: off, 1: every message) and tagged
	// with a 16-bit flow ID that rides the wire; every layer records span
	// events for tagged messages into a bounded ring served at GET /spans
	// for cmd/diffscope to merge cluster-wide.
	TraceSample float64 `json:"trace_sample"`

	// Pprof mounts net/http/pprof's profiling endpoints on the control
	// plane under /debug/pprof/. Off by default: the control plane is
	// often reachable beyond localhost and profiles leak heap contents.
	Pprof bool `json:"pprof"`

	// StateFile, when set, persists the application layer (keys,
	// subscriptions, publications, filters) after every mutation so a
	// crashed node warm-restarts into the same role. Empty disables
	// persistence.
	StateFile string `json:"state_file"`

	// Drain is how long shutdown keeps forwarding after withdrawing the
	// application layer, letting in-flight traffic and reinforcement
	// state settle (default 500ms).
	Drain time.Duration `json:"drain"`
}

// UnmarshalJSON accepts durations as Go strings ("500ms") and neighbor
// keys as JSON strings, the natural forms in a hand-written config file.
func (c *Config) UnmarshalJSON(b []byte) error {
	type raw struct {
		ID                  uint32            `json:"id"`
		Listen              string            `json:"listen"`
		HTTP                string            `json:"http"`
		Neighbors           map[string]string `json:"neighbors"`
		Seeds               []string          `json:"seeds"`
		Discover            bool              `json:"discover"`
		DegreeCap           int               `json:"degree_cap"`
		AnnounceInterval    string            `json:"announce_interval"`
		Energy              float64           `json:"energy"`
		Advertise           string            `json:"advertise"`
		AddrFile            string            `json:"addr_file"`
		Keys                []string          `json:"keys"`
		Subscribe           []string          `json:"subscribe"`
		Publish             []string          `json:"publish"`
		Filters             []string          `json:"filters"`
		Seed                int64             `json:"seed"`
		InterestInterval    string            `json:"interest_interval"`
		ExploratoryInterval string            `json:"exploratory_interval"`
		ExploratoryEvery    int               `json:"exploratory_every"`
		ForwardJitter       string            `json:"forward_jitter"`
		TTL                 uint8             `json:"ttl"`
		Loss                float64           `json:"loss"`
		Latency             string            `json:"latency"`
		Heartbeat           string            `json:"heartbeat"`
		SuspectAfter        string            `json:"suspect_after"`
		DeadAfter           string            `json:"dead_after"`
		Reliable            bool              `json:"reliable"`
		ReliableRTO         string            `json:"reliable_rto"`
		Custody             bool              `json:"custody"`
		CustodyFile         string            `json:"custody_file"`
		CustodyLimit        int               `json:"custody_limit"`
		SeenTTL             string            `json:"seen_ttl"`
		EnergyAware         bool              `json:"energy_aware"`
		TraceSample         float64           `json:"trace_sample"`
		Pprof               bool              `json:"pprof"`
		StateFile           string            `json:"state_file"`
		Drain               string            `json:"drain"`
	}
	var r raw
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	c.ID, c.Listen, c.HTTP = r.ID, r.Listen, r.HTTP
	c.Seeds, c.Discover, c.DegreeCap = r.Seeds, r.Discover, r.DegreeCap
	c.Energy, c.Advertise, c.AddrFile = r.Energy, r.Advertise, r.AddrFile
	c.Keys, c.Subscribe, c.Publish, c.Filters = r.Keys, r.Subscribe, r.Publish, r.Filters
	c.Seed, c.ExploratoryEvery, c.TTL, c.Loss = r.Seed, r.ExploratoryEvery, r.TTL, r.Loss
	c.Reliable, c.StateFile = r.Reliable, r.StateFile
	c.Custody, c.CustodyFile, c.CustodyLimit = r.Custody, r.CustodyFile, r.CustodyLimit
	c.EnergyAware = r.EnergyAware
	c.TraceSample, c.Pprof = r.TraceSample, r.Pprof
	if r.Neighbors != nil {
		c.Neighbors = map[uint32]string{}
		for k, v := range r.Neighbors {
			id, err := strconv.ParseUint(k, 10, 32)
			if err != nil {
				return fmt.Errorf("neighbor key %q: %w", k, err)
			}
			c.Neighbors[uint32(id)] = v
		}
	}
	for _, f := range []struct {
		s   string
		dst *time.Duration
	}{
		{r.AnnounceInterval, &c.AnnounceInterval},
		{r.InterestInterval, &c.InterestInterval},
		{r.ExploratoryInterval, &c.ExploratoryInterval},
		{r.ForwardJitter, &c.ForwardJitter},
		{r.Latency, &c.Latency},
		{r.Heartbeat, &c.Heartbeat},
		{r.SuspectAfter, &c.SuspectAfter},
		{r.DeadAfter, &c.DeadAfter},
		{r.ReliableRTO, &c.ReliableRTO},
		{r.SeenTTL, &c.SeenTTL},
		{r.Drain, &c.Drain},
	} {
		if f.s == "" {
			continue
		}
		d, err := time.ParseDuration(f.s)
		if err != nil {
			return fmt.Errorf("duration %q: %w", f.s, err)
		}
		*f.dst = d
	}
	return nil
}

// loadConfig reads a JSON config file.
func loadConfig(path string) (Config, error) {
	var c Config
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("config %s: %w", path, err)
	}
	return c, nil
}

// parseNeighbors parses the -neighbors flag: "2=127.0.0.1:7002,3=...".
func parseNeighbors(s string) (map[uint32]string, error) {
	out := map[uint32]string{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		id, addr, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("neighbor %q: want ID=HOST:PORT", field)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(id), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("neighbor %q: %w", field, err)
		}
		out[uint32(n)] = strings.TrimSpace(addr)
	}
	return out, nil
}

// validate fills defaults and rejects unusable configs.
func (c *Config) validate() error {
	if c.ID == 0 {
		return fmt.Errorf("diffnode: config requires a nonzero node id")
	}
	if c.Listen == "" {
		return fmt.Errorf("diffnode: config requires a UDP listen address")
	}
	if c.HTTP == "" {
		return fmt.Errorf("diffnode: config requires an HTTP listen address")
	}
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("diffnode: loss %v outside [0,1)", c.Loss)
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID)
	}
	if c.CustodyLimit < 0 {
		return fmt.Errorf("diffnode: custody limit %d is negative", c.CustodyLimit)
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return fmt.Errorf("diffnode: trace sample %v outside [0,1]", c.TraceSample)
	}
	if c.CustodyFile != "" || c.CustodyLimit > 0 {
		c.Custody = true
	}
	if c.Drain <= 0 {
		c.Drain = 500 * time.Millisecond
	}
	if c.Energy == 0 {
		c.Energy = 1
	}
	if c.Energy < 0 || c.Energy > 1 {
		return fmt.Errorf("diffnode: energy %v outside (0,1]", c.Energy)
	}
	if c.DegreeCap < 0 {
		return fmt.Errorf("diffnode: degree cap %d is negative", c.DegreeCap)
	}
	if c.discoveryEnabled() && c.Heartbeat < 0 {
		return fmt.Errorf("diffnode: discovery requires the failure detector (heartbeat >= 0)")
	}
	return nil
}

// discoveryEnabled reports whether the membership subsystem runs: any
// seed enables it, as does the explicit flag (the seed node itself has
// no seeds — it just listens).
func (c *Config) discoveryEnabled() bool {
	return len(c.Seeds) > 0 || c.Discover
}

// neighborSummary renders the neighbor table for the startup log line.
func (c *Config) neighborSummary() string {
	ids := make([]uint32, 0, len(c.Neighbors))
	for id := range c.Neighbors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d=%s", id, c.Neighbors[id])
	}
	return strings.Join(parts, ",")
}
