package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunSingleExperiments(t *testing.T) {
	// The cheap analytic experiments run at full fidelity; the simulated
	// ones are exercised with tiny overrides.
	for exp, want := range map[string]string{
		"model":  "990",
		"energy": "duty-cycle",
		"micro":  "106 bytes",
	} {
		var buf bytes.Buffer
		if err := run(&buf, exp, false, 0, 0, false, "", 0, 0); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s output missing %q:\n%s", exp, want, buf.String())
		}
	}
}

func TestRunSimulatedExperimentTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig8", true, 1, 5*time.Minute, false, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Errorf("fig8 output:\n%s", buf.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run(&buf, "bogus", false, 0, 0, false, "", 0, 0)
	if err == nil {
		t.Fatal("unknown experiment must error")
	}
	// The error must name the rejected input and list every valid
	// experiment, so a typo is self-correcting from the message alone.
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("error does not name the bad input: %v", err)
	}
	for _, name := range []string{
		"fig8", "fig9", "fig11", "model", "energy", "micro",
		"sweep-exploratory", "sweep-asymmetry", "ablate-negrf",
		"duty-cycle", "scale", "push-pull", "latency", "breakdown",
		"sweep-capture", "scale-parallel", "churn", "all",
	} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list experiment %q: %v", name, err)
		}
	}
}

func TestSeedList(t *testing.T) {
	s := seedList(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Errorf("seedList: %v", s)
	}
}

func TestRunAllBranchesTiny(t *testing.T) {
	// Exercise every simulated experiment branch with minimal runs; the
	// shape assertions live in internal/experiments — this checks the CLI
	// plumbing end to end.
	for _, exp := range []string{
		"fig9", "fig11", "sweep-exploratory", "sweep-asymmetry",
		"ablate-negrf", "duty-cycle", "scale", "push-pull", "latency",
		"breakdown", "sweep-capture", "churn", "scale-parallel", "broker",
	} {
		var buf bytes.Buffer
		if err := run(&buf, exp, true, 1, 3*time.Minute, false, "", 0, 2); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
}

func TestRunAllTiny(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", true, 1, 2*time.Minute, false, "", 0, 2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "Figure 9", "Figure 11", "990", "duty-cycle", "Scalability"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("all output missing %q", want)
		}
	}
}
