// Command diffsim regenerates the paper's evaluation (section 6): every
// figure and analytic table, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	diffsim -experiment fig8              # aggregation benefits (Figure 8)
//	diffsim -experiment fig9              # nested queries (Figure 9)
//	diffsim -experiment fig11             # matching cost (Figures 10/11)
//	diffsim -experiment model             # section 6.1 traffic model
//	diffsim -experiment energy            # section 6.1 energy model
//	diffsim -experiment micro             # section 4.3 micro-diffusion budget
//	diffsim -experiment sweep-exploratory # ablation: exploratory cadence
//	diffsim -experiment sweep-asymmetry   # ablation: link asymmetry
//	diffsim -experiment ablate-negrf      # ablation: negative reinforcement
//	diffsim -experiment duty-cycle        # measured duty-cycle trade-off
//	diffsim -experiment scale             # grid scalability sweep
//	diffsim -experiment push-pull         # one-phase push vs two-phase pull
//	diffsim -experiment latency           # §6.1 aggregation latency claim
//	diffsim -experiment breakdown         # Fig.8 byte decomposition vs model
//	diffsim -experiment sweep-capture     # ablation: radio capture effect
//	diffsim -experiment churn             # fault injection: relay kill + MTBF/MTTR churn
//	diffsim -experiment scale-parallel    # 1024-node grid on the sharded kernel
//	diffsim -experiment ferry             # disruption tolerance: custody transfer vs baseline
//	diffsim -experiment broker            # million-subscription node on the inverted match index
//	diffsim -experiment all               # everything above
//
// -quick shrinks runs for a fast smoke pass; -seeds and -duration override
// the repetition count and per-run virtual time of the simulated
// experiments. For the churn experiment, -metrics prints the first seed's
// end-of-run per-layer metrics snapshot and -trace-out FILE exports its
// relay-kill message trace as JSONL for cmd/difftrace. For scale-parallel,
// -shards sets the largest shard count compared (the sweep runs 2, 4, ...
// up to it); every parallel run is checked byte-identical to the
// sequential baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"diffusion/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (fig8, fig9, fig11, model, energy, micro, sweep-exploratory, sweep-asymmetry, ablate-negrf, duty-cycle, scale, push-pull, latency, breakdown, sweep-capture, churn, scale-parallel, ferry, broker, all)")
		quick      = flag.Bool("quick", false, "shrink runs for a fast smoke pass")
		seeds      = flag.Int("seeds", 0, "override the number of repetitions")
		duration   = flag.Duration("duration", 0, "override the per-run virtual duration")
		metrics    = flag.Bool("metrics", false, "print the end-of-run per-layer metrics snapshot (churn experiment, first seed)")
		traceOut   = flag.String("trace-out", "", "export the churn experiment's first-seed relay-kill trace as JSONL to this file (analyze with difftrace)")
		traceSamp  = flag.Float64("trace-sample", 0, "flight-path sampling rate [0,1] for the -trace-out export (difftrace paths/latency)")
		shards     = flag.Int("shards", 8, "largest shard count in the scale-parallel sweep (doubling from 2)")
	)
	flag.Parse()

	if err := run(os.Stdout, *experiment, *quick, *seeds, *duration, *metrics, *traceOut, *traceSamp, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "diffsim:", err)
		os.Exit(1)
	}
}

func seedList(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

func run(w io.Writer, experiment string, quick bool, seeds int, duration time.Duration, metrics bool, traceOut string, traceSamp float64, shards int) error {
	if traceSamp < 0 || traceSamp > 1 {
		return fmt.Errorf("-trace-sample %v out of range [0,1]", traceSamp)
	}
	sep := func() { fmt.Fprintln(w) }

	fig8 := func() {
		cfg := experiments.DefaultFig8()
		if quick {
			cfg.Seeds = seedList(2)
			cfg.Duration = 10 * time.Minute
		}
		if seeds > 0 {
			cfg.Seeds = seedList(seeds)
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		experiments.PrintFig8(w, experiments.RunFig8(cfg))
	}
	fig9 := func() {
		cfg := experiments.DefaultFig9()
		if quick {
			cfg.Seeds = seedList(2)
			cfg.Duration = 10 * time.Minute
		}
		if seeds > 0 {
			cfg.Seeds = seedList(seeds)
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		experiments.PrintFig9(w, experiments.RunFig9(cfg))
	}
	fig11 := func() {
		cfg := experiments.DefaultFig11()
		if quick {
			cfg.Iterations = 100
			cfg.Shuffles = 50
		}
		experiments.PrintFig11(w, experiments.RunFig11(cfg))
	}
	sweepExploratory := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(1), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintExploratorySweep(w,
			experiments.RunExploratorySweep(sl, d, []int{2, 5, 10, 20, 50}))
	}
	sweepAsymmetry := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintAsymmetrySweep(w,
			experiments.RunAsymmetrySweep(sl, d, []float64{0, 0.8, 2, 4}))
	}
	dutyCycle := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintDutyCycleSweep(w,
			experiments.RunDutyCycleSweep(sl, d, []float64{1.0, 0.5, 0.22, 0.15, 0.10}))
	}
	scale := func() {
		sl, d := seedList(3), 15*time.Minute
		sizes := []int{3, 4, 5, 6, 7}
		if quick {
			sl, d = seedList(1), 10*time.Minute
			sizes = []int{3, 5}
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintScaleSweep(w, experiments.RunScaleSweep(sl, d, sizes))
	}
	pushPull := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintPushPull(w, experiments.RunPushPull(sl, d, []int{1, 2, 3, 4}))
	}
	latency := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		window := 500 * time.Millisecond
		experiments.PrintLatency(w, experiments.RunLatency(sl, d, window), window)
	}
	sweepCapture := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintCaptureSweep(w,
			experiments.RunCaptureSweep(sl, d, []float64{0, 0.5, 0.7, 0.85, 0.95}))
	}
	breakdown := func() {
		sl, d := seedList(3), 30*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintBreakdown(w, experiments.RunBreakdown(sl, d, 4))
	}
	negrf := func() {
		sl, d := seedList(3), 20*time.Minute
		if quick {
			sl, d = seedList(2), 10*time.Minute
		}
		if seeds > 0 {
			sl = seedList(seeds)
		}
		if duration > 0 {
			d = duration
		}
		experiments.PrintNegRFAblation(w, experiments.RunNegRFAblation(sl, d))
	}

	scaleParallel := func() {
		cfg := experiments.DefaultParallelScale()
		if quick {
			cfg.Side = 16
			cfg.Duration = time.Minute
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		cfg.Shards = nil
		for n := 2; n <= shards; n *= 2 {
			cfg.Shards = append(cfg.Shards, n)
		}
		if len(cfg.Shards) == 0 {
			cfg.Shards = []int{2}
		}
		experiments.PrintParallelScale(w, cfg, experiments.RunParallelScale(cfg))
	}

	broker := func() {
		cfg := experiments.DefaultBroker()
		if quick {
			cfg.Sizes = []int{1000, 10000}
			cfg.Msgs = 200
		}
		experiments.PrintBroker(w, experiments.RunBroker(cfg))
	}

	ferry := func() {
		cfg := experiments.DefaultFerry()
		if quick {
			cfg.Seeds = seedList(2)
			cfg.Duration = 6 * time.Minute
		}
		if seeds > 0 {
			cfg.Seeds = seedList(seeds)
		}
		if duration > 0 {
			cfg.Duration = duration
		}
		experiments.PrintFerry(w, experiments.RunFerry(cfg))
	}

	churn := func() error {
		cfg := experiments.DefaultChurn()
		if quick {
			cfg.Seeds = seedList(2)
			cfg.Duration = 12 * time.Minute
			cfg.KillAt = 6 * time.Minute
		}
		if seeds > 0 {
			cfg.Seeds = seedList(seeds)
		}
		if duration > 0 {
			cfg.Duration = duration
			cfg.KillAt = duration / 2
		}
		experiments.PrintChurn(w, experiments.RunRelayKill(cfg), experiments.RunChurnSweep(cfg))
		if !metrics && traceOut == "" {
			return nil
		}
		// Re-run the first seed traced: the tap is pass-through, so with
		// sampling off the traced run reproduces the printed one exactly.
		// -trace-sample > 0 adds flight-path spans to the export at the
		// cost of extra per-origination random draws (the traced re-run's
		// jitter then differs from the printed run's).
		cfg.TraceSampling = traceSamp
		_, tr, snap := experiments.RunRelayKillTraced(cfg, cfg.Seeds[0])
		if metrics {
			fmt.Fprintln(w)
			snap.Write(w)
		}
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				return err
			}
			if err := tr.ExportJSONL(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "\ntrace: %d records (seed %d) written to %s\n",
				tr.Len()+len(tr.Faults()), cfg.Seeds[0], traceOut)
		}
		return nil
	}

	// The experiment registry drives both dispatch and the unknown-name
	// error, so the two cannot drift apart. Order is the "all" run order.
	registry := []struct {
		name string
		run  func() error
	}{
		{"fig8", func() error { fig8(); return nil }},
		{"fig9", func() error { fig9(); return nil }},
		{"fig11", func() error { fig11(); return nil }},
		{"model", func() error { experiments.PrintTrafficModel(w); return nil }},
		{"energy", func() error { experiments.PrintEnergyModel(w); return nil }},
		{"micro", func() error { experiments.PrintMicroFootprint(w); return nil }},
		{"sweep-exploratory", func() error { sweepExploratory(); return nil }},
		{"sweep-asymmetry", func() error { sweepAsymmetry(); return nil }},
		{"ablate-negrf", func() error { negrf(); return nil }},
		{"duty-cycle", func() error { dutyCycle(); return nil }},
		{"scale", func() error { scale(); return nil }},
		{"push-pull", func() error { pushPull(); return nil }},
		{"latency", func() error { latency(); return nil }},
		{"breakdown", func() error { breakdown(); return nil }},
		{"sweep-capture", func() error { sweepCapture(); return nil }},
		{"scale-parallel", func() error { scaleParallel(); return nil }},
		{"churn", churn},
		{"ferry", func() error { ferry(); return nil }},
		{"broker", func() error { broker(); return nil }},
	}

	if experiment == "all" {
		for i, e := range registry {
			if i > 0 {
				sep()
			}
			if err := e.run(); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range registry {
		if e.name == experiment {
			return e.run()
		}
	}
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.name
	}
	return fmt.Errorf("unknown experiment %q (want %s, or all)",
		experiment, strings.Join(names, ", "))
}
