package diffusion_test

import (
	"strings"
	"testing"
	"time"

	"diffusion"
)

func TestFacadeSuppression(t *testing.T) {
	// A loss-free channel keeps the duplicate pair's fate deterministic;
	// the test is about the relay's suppression logic, not channel luck.
	rp := diffusion.PerfectRadio()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     1,
		Topology: diffusion.LineTopology(3, 10),
		Radio:    &rp,
	})
	relay := net.Node(2)
	sup := net.NewSuppression(relay, diffusion.SuppressionOptions{
		IdentityKeys: []diffusion.Key{diffusion.KeySequence},
	})
	interest, publication := surveillance()
	var got int
	net.Node(1).Subscribe(interest, func(*diffusion.Message) { got++ })
	src := net.Node(3)
	pub := src.Publish(publication)
	// The same sequence number twice: the relay must pass one.
	net.After(2*time.Second, func() {
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, 1)})
	})
	net.After(4*time.Second, func() {
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, 1)})
	})
	net.Run(time.Minute)
	if sup.Suppressed == 0 {
		t.Errorf("suppression never triggered (passed=%d, delivered=%d)", sup.Passed, got)
	}
	if got != 1 {
		t.Errorf("delivered %d, want exactly 1", got)
	}
}

func TestFacadeTapAndCounting(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     2,
		Topology: diffusion.LineTopology(2, 10),
	})
	tap := net.NewTap(net.Node(1), nil, nil)
	agg := net.NewCountingAggregator(net.Node(1), nil, 200*time.Millisecond)
	interest, publication := surveillance()
	var counts []int32
	net.Node(1).Subscribe(interest, func(m *diffusion.Message) {
		if c, ok := m.Attrs.FindActual(diffusion.KeyCount); ok {
			counts = append(counts, c.Val.Int32())
		}
	})
	src := net.Node(2)
	pub := src.Publish(publication)
	net.After(2*time.Second, func() {
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, 5)})
	})
	net.Run(30 * time.Second)
	if tap.Total() == 0 {
		t.Error("tap observed nothing")
	}
	if agg.Flushed == 0 {
		t.Error("counting aggregator never flushed")
	}
	if len(counts) != 1 || counts[0] != 1 {
		t.Errorf("count attribute: %v", counts)
	}
}

func TestFacadeGeoScope(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     3,
		Topology: diffusion.LineTopology(5, 10),
	})
	var scopes []*diffusion.GeoScope
	for _, id := range net.IDs() {
		scopes = append(scopes, net.NewGeoScope(net.Node(id), 13.5))
	}
	var got int
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "geo"),
		diffusion.Float64(diffusion.KeyX, diffusion.GE, 35),
		diffusion.Float64(diffusion.KeyX, diffusion.LE, 45),
		diffusion.Float64(diffusion.KeyY, diffusion.GE, -5),
		diffusion.Float64(diffusion.KeyY, diffusion.LE, 5),
	}, func(*diffusion.Message) { got++ })
	src := net.Node(5) // at x=40, inside the region
	pub := src.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "geo"),
		diffusion.Float64(diffusion.KeyX, diffusion.IS, 40),
		diffusion.Float64(diffusion.KeyY, diffusion.IS, 0),
	})
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
	})
	net.Run(2 * time.Minute)
	if got == 0 {
		t.Fatal("scoped interest delivered nothing")
	}
	unicasts := 0
	for _, g := range scopes {
		unicasts += g.Unicasts
	}
	if unicasts == 0 {
		t.Error("relays should have greedy-unicast the scoped interest")
	}
}

func TestFacadeElection(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     4,
		Topology: diffusion.LineTopology(2, 5),
	})
	results := map[uint32]bool{}
	net.NewElection(net.Node(1), "cam", 10, 50, 30*time.Second, func(w bool) { results[1] = w })
	net.NewElection(net.Node(2), "cam", 5, 50, 30*time.Second, func(w bool) { results[2] = w })
	net.Run(2 * time.Minute)
	if len(results) != 2 {
		t.Fatalf("decided: %v", results)
	}
	if results[1] || !results[2] {
		t.Errorf("node 2 (score 5) should win: %v", results)
	}
}

func TestFacadeMoteTier(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:      5,
		Topology:  diffusion.LineTopology(4, 10),
		MoteNodes: []uint32{3, 4},
	})
	if len(net.Nodes()) != 2 {
		t.Fatalf("Nodes() should list only full nodes, got %d", len(net.Nodes()))
	}
	gw := diffusion.NewGateway(net.Node(2), net.Mote(3), []diffusion.GatewayMapping{{
		Tag: 9,
		Watch: diffusion.Attributes{
			diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
			diffusion.String(diffusion.KeyType, diffusion.IS, "photo"),
		},
		Publication: diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "photo")},
	}})
	var got []int32
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "photo"),
	}, func(m *diffusion.Message) {
		v, _ := m.Attrs.FindActual(diffusion.KeyIntensity)
		got = append(got, v.Val.Int32())
	})
	leaf := net.Mote(4)
	net.Every(10*time.Second, func() { leaf.Send(9, 77) })
	net.Run(2 * time.Minute)
	if gw.InterestsDown == 0 || gw.DataUp == 0 {
		t.Fatalf("gateway bridging: %+v", gw)
	}
	if len(got) == 0 || got[0] != 77 {
		t.Errorf("mote readings at user: %v", got)
	}
	if diffusion.MoteMemoryFootprint() > 256 {
		t.Error("mote budget")
	}
	defer func() {
		if recover() == nil {
			t.Error("Mote on a full node must panic")
		}
	}()
	net.Mote(1)
}

func TestFacadeNestedResponder(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     6,
		Topology: diffusion.LineTopology(3, 10),
	})
	user, audio, light := net.Node(1), net.Node(2), net.Node(3)
	resp := diffusion.NewNestedQueryResponder(diffusion.NestedQueryConfig{
		Node: audio.Node,
		TriggerWatch: diffusion.Attributes{
			diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
			diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
		},
		InitialInterest: diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.EQ, "light")},
		Publication:     diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "audio")},
		OnInitial: func(m *diffusion.Message) diffusion.Attributes {
			s, _ := m.Attrs.FindActual(diffusion.KeySequence)
			return diffusion.Attributes{s}
		},
	})
	var heard int
	user.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "audio"),
	}, func(*diffusion.Message) { heard++ })
	pub := light.Publish(diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "light")})
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		light.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
	})
	net.Run(3 * time.Minute)
	if !resp.Active() || resp.Reports == 0 || heard == 0 {
		t.Errorf("nested responder: active=%v reports=%d heard=%d",
			resp.Active(), resp.Reports, heard)
	}
}

func TestKeyHelpers(t *testing.T) {
	k := diffusion.RegisterKey("facade-custom")
	if diffusion.KeyName(k) != "facade-custom" {
		t.Error("key registry round trip")
	}
	a := diffusion.Attributes{diffusion.Float64(diffusion.KeyConfidence, diffusion.GT, 0.5)}
	b := diffusion.Attributes{diffusion.Float64(diffusion.KeyConfidence, diffusion.IS, 0.7)}
	if !diffusion.OneWayMatch(a, b) || !diffusion.Match(a, b) {
		t.Error("matching re-exports")
	}
	if !strings.Contains(a.String(), "confidence GT") {
		t.Error("attribute rendering")
	}
}

func TestFacadeCache(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     7,
		Topology: diffusion.LineTopology(3, 10),
	})
	cache := net.NewCache(net.Node(2), diffusion.CacheOptions{TTL: time.Hour})
	interest, publication := surveillance()

	// Prime: an early sink pulls one reading through the caching relay.
	h := net.Node(1).Subscribe(interest, nil)
	pub := net.Node(3).Publish(publication)
	net.After(2*time.Second, func() {
		net.Node(3).Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, 5),
		})
	})
	net.Run(10 * time.Second)
	if cache.Cached == 0 {
		t.Fatal("cache never stored the reading")
	}
	_ = net.Node(1).Unsubscribe(h)

	// A late subscriber gets the cached reading without a new send.
	var seq int32 = -1
	net.Node(1).Subscribe(interest, func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			seq = a.Val.Int32()
		}
	})
	net.Run(time.Minute)
	if cache.Replays == 0 || seq != 5 {
		t.Errorf("cache replay: replays=%d seq=%d", cache.Replays, seq)
	}
}
