package diffusion

import (
	"io"
	"time"

	"diffusion/internal/filters"
	"diffusion/internal/microdiff"
)

// This file exposes the in-network processing library (section 3.3/5 of
// the paper) and the micro-diffusion tier (section 4.3) through the public
// facade, so applications never reach into internal packages.

// In-network processing types, re-exported.
type (
	// Suppression is the Figure 8 duplicate-suppression aggregation
	// filter.
	Suppression = filters.Suppression
	// SuppressionOptions configures NewSuppression.
	SuppressionOptions = filters.SuppressionOptions
	// CountingAggregator delays and merges duplicate events, adding a
	// "count" attribute.
	CountingAggregator = filters.CountingAggregator
	// Tap is a pass-through observation/debugging filter.
	Tap = filters.Tap
	// Cache is the in-network recent-data cache; it answers fresh
	// interests with the newest matching reading.
	Cache = filters.Cache
	// CacheOptions configures NewCache.
	CacheOptions = filters.CacheOptions
	// Fusion combines same-event detections from different sensor
	// modalities into one report with a fused confidence.
	Fusion = filters.Fusion
	// GeoScope replaces interest flooding with greedy geographic unicast
	// outside the target region.
	GeoScope = filters.GeoScope
	// Election is the SRM-style triggered-sensor election of section 5.2.
	Election = filters.Election
	// ElectionConfig configures one election candidate.
	ElectionConfig = filters.ElectionConfig
	// NestedQueryResponder implements the triggered-sensor side of a
	// nested query.
	NestedQueryResponder = filters.NestedQueryResponder
	// NestedQueryConfig configures a NestedQueryResponder.
	NestedQueryConfig = filters.NestedQueryConfig
)

// NewSuppression installs a duplicate-suppression aggregation filter on a
// node of the network.
func (net *Network) NewSuppression(n *Node, opt SuppressionOptions) *Suppression {
	return filters.NewSuppression(n.Node, net.NodeEnv(n.ID()), opt)
}

// NewCountingAggregator installs a delay-and-count aggregation filter.
func (net *Network) NewCountingAggregator(n *Node, pattern Attributes, window time.Duration) *CountingAggregator {
	return filters.NewCountingAggregator(n.Node, net.NodeEnv(n.ID()), pattern, window, 0)
}

// NewCache installs an in-network data cache on a node.
func (net *Network) NewCache(n *Node, opt CacheOptions) *Cache {
	return filters.NewCache(n.Node, net.NodeEnv(n.ID()), opt)
}

// NewTap installs an observation filter; if w is non-nil messages are
// logged to it.
func (net *Network) NewTap(n *Node, pattern Attributes, w io.Writer) *Tap {
	return filters.NewTap(n.Node, pattern, w)
}

// NewFusion installs a sensor-fusion filter on a node: detections of the
// same (task, sequence) event from different modalities fold into one
// report whose confidence combines them as independent evidence.
func (net *Network) NewFusion(n *Node, pattern Attributes, window time.Duration) *Fusion {
	return filters.NewFusion(n.Node, net.NodeEnv(n.ID()), pattern, window)
}

// NewGeoScope installs geographic interest scoping on a node. Positions
// come from the network's topology; neighbors are the nodes within the
// given radio range.
func (net *Network) NewGeoScope(n *Node, radioRange float64) *GeoScope {
	tp := net.cfg.Topology
	self, ok := tp.Node(n.ID())
	if !ok {
		panic("diffusion: node not in topology")
	}
	nbrs := map[uint32][2]float64{}
	for _, id := range tp.NeighborsWithin(n.ID(), radioRange) {
		p, _ := tp.Node(id)
		nbrs[id] = [2]float64{p.X, p.Y}
	}
	return filters.NewGeoScope(n.Node, self.X, self.Y, nbrs)
}

// NewElection enters a node into a named election; lower scores win.
func (net *Network) NewElection(n *Node, name string, score float64, scale float64, window time.Duration, decided func(bool)) *Election {
	env := net.NodeEnv(n.ID())
	return filters.NewElection(filters.ElectionConfig{
		Node:       n.Node,
		Clock:      env,
		Rand:       env.Rand(),
		Name:       name,
		Score:      score,
		ScoreScale: scale,
		Window:     window,
		OnDecided:  decided,
	})
}

// NewNestedQueryResponder installs the triggered-sensor side of a nested
// query on a node.
func NewNestedQueryResponder(cfg NestedQueryConfig) *NestedQueryResponder {
	return filters.NewNestedQueryResponder(cfg)
}

// Micro-diffusion tier, re-exported.
type (
	// Mote is a micro-diffusion instance (section 4.3).
	Mote = microdiff.Mote
	// MoteTag is the condensed single-attribute flow identifier.
	MoteTag = microdiff.Tag
	// Gateway bridges a mote tier to full diffusion.
	Gateway = microdiff.Gateway
	// GatewayMapping binds one mote tag to its attribute-space meaning.
	GatewayMapping = microdiff.Mapping
)

// Micro-diffusion static limits (paper section 4.3).
const (
	MoteMaxGradients = microdiff.MaxGradients
	MoteCacheSize    = microdiff.CacheSize
)

// MoteMemoryFootprint returns micro-diffusion's static protocol state in
// bytes.
func MoteMemoryFootprint() int { return microdiff.MemoryFootprint() }

// NewGateway bridges a full-diffusion node and a mote (typically one
// physical gateway device with two radios).
func NewGateway(n *Node, mote *Mote, mappings []GatewayMapping) *Gateway {
	return microdiff.NewGateway(n.Node, mote, mappings)
}
